// Simplified Performance Consultant — the consumer of the IS data stream.
//
// Paradyn's Performance Consultant "controls the automated search for
// performance problems, requesting and receiving performance data from the
// Data Manager" and implements the W3 search (why / where / when) for
// on-the-fly bottleneck location (Section 2 of the paper; Hollingsworth et
// al., SHPCC'94).  This module reproduces the search skeleton the IS
// exists to feed:
//
//   why:   hypotheses — CPUBound, CommunicationBound, SyncWaiting — are
//          tested against thresholds on windowed metric means;
//   where: a confirmed hypothesis is refined along the machine resource
//          hierarchy (whole program -> node -> process) to locate the
//          offending focus;
//   when:  tests run continuously over a sliding window, so conclusions
//          can appear and expire as program phases change.
//
// The consultant consumes rocc::Sample values via MainParadyn's sample
// sink, so everything it sees has paid the full collection/forwarding path
// (including monitoring latency — stale data delays diagnosis, which is
// why the paper treats latency as a first-class IS metric).
#pragma once

#include <cstdint>
#include <map>
#include <utility>
#include <string>
#include <vector>

#include "rocc/types.hpp"

namespace paradyn::consultant {

/// The "why" axis of the W3 search.
enum class Hypothesis : std::uint8_t {
  CpuBound,            ///< computation fraction above threshold
  CommunicationBound,  ///< communication fraction above threshold
  SyncWaiting,         ///< neither computing nor communicating (blocked)
};

[[nodiscard]] const char* to_string(Hypothesis h) noexcept;

/// The "where" axis of the resource hierarchy: whole program, one node, or
/// one process on a node (Paradyn refines foci along such hierarchies).
struct Focus {
  bool whole_program = true;
  std::int32_t node = -1;
  std::int32_t process = -1;  ///< -1: node-level focus.

  [[nodiscard]] std::string describe() const;
};

/// A confirmed (hypothesis, focus) pair with its supporting evidence.
struct Finding {
  Hypothesis hypothesis = Hypothesis::CpuBound;
  Focus focus;
  double observed = 0.0;   ///< Windowed metric mean that tripped the test.
  double threshold = 0.0;
  std::size_t samples = 0; ///< Evidence size.
};

struct ConsultantConfig {
  double cpu_bound_threshold = 0.85;
  double comm_bound_threshold = 0.30;
  double sync_waiting_threshold = 0.40;
  /// Sliding-window length per focus, in samples.
  std::size_t window = 32;
  /// Minimum evidence before a test may conclude.
  std::size_t min_samples = 8;
  /// Refine to per-node foci only when the node deviates from the global
  /// mean by at least this much (keeps the search from flagging everyone).
  double refinement_margin = 0.05;
};

/// Streaming W3-style search over delivered samples.
class PerformanceConsultant {
 public:
  explicit PerformanceConsultant(ConsultantConfig config = {});

  /// Feed one delivered sample (wire this to MainParadyn::set_sample_sink).
  void observe(const rocc::Sample& sample);

  /// Run the two-level search on the current windows.  Global findings come
  /// first, then per-node refinements ordered by metric severity.
  [[nodiscard]] std::vector<Finding> search() const;

  /// The "when" axis: a (hypothesis, focus) pair's confirmation episode.
  struct Episode {
    Hypothesis hypothesis = Hypothesis::CpuBound;
    Focus focus;
    rocc::SimTime first_confirmed_us = 0.0;
    rocc::SimTime last_confirmed_us = 0.0;
    std::size_t confirmations = 0;
  };

  /// Run search() and fold the confirmed findings into the episode history,
  /// timestamped with the latest sample time observed.  Call periodically
  /// (e.g. once per delivered batch) to track when conclusions appear.
  std::vector<Finding> search_and_record();

  /// Episode history in first-confirmation order.
  [[nodiscard]] const std::vector<Episode>& history() const noexcept { return history_; }
  /// Latest sample generation time seen.
  [[nodiscard]] rocc::SimTime now() const noexcept { return now_us_; }

  /// Windowed mean of a hypothesis metric for a node (NaN-free; 0 if no
  /// evidence).  Exposed for tests and reporting.
  [[nodiscard]] double node_mean(Hypothesis h, std::int32_t node) const;
  /// Same at the process level.
  [[nodiscard]] double process_mean(Hypothesis h, std::int32_t node,
                                    std::int32_t process) const;
  [[nodiscard]] double global_mean(Hypothesis h) const;
  [[nodiscard]] std::uint64_t samples_observed() const noexcept { return observed_; }
  [[nodiscard]] std::vector<std::int32_t> known_nodes() const;

 private:
  struct Window {
    std::vector<double> cpu;   // ring buffers of metric values
    std::vector<double> comm;
    std::size_t next = 0;
    std::size_t filled = 0;

    void push(double cpu_frac, double comm_frac, std::size_t capacity);
    [[nodiscard]] double mean_cpu() const;
    [[nodiscard]] double mean_comm() const;
  };

  [[nodiscard]] double metric_of(const Window& w, Hypothesis h) const;
  [[nodiscard]] double threshold_of(Hypothesis h) const;

  ConsultantConfig config_;
  std::map<std::int32_t, Window> per_node_;
  std::map<std::pair<std::int32_t, std::int32_t>, Window> per_process_;
  Window global_;
  std::uint64_t observed_ = 0;
  rocc::SimTime now_us_ = 0.0;
  std::vector<Episode> history_;
};

}  // namespace paradyn::consultant
