#include "consultant/consultant.hpp"

#include <algorithm>
#include <cmath>

namespace paradyn::consultant {

const char* to_string(Hypothesis h) noexcept {
  switch (h) {
    case Hypothesis::CpuBound:
      return "CPUBound";
    case Hypothesis::CommunicationBound:
      return "CommunicationBound";
    case Hypothesis::SyncWaiting:
      return "SyncWaiting";
  }
  return "?";
}

std::string Focus::describe() const {
  if (whole_program) return "whole program";
  if (process < 0) return "node " + std::to_string(node);
  return "node " + std::to_string(node) + " / process " + std::to_string(process);
}

PerformanceConsultant::PerformanceConsultant(ConsultantConfig config)
    : config_(std::move(config)) {}

void PerformanceConsultant::Window::push(double cpu_frac, double comm_frac,
                                         std::size_t capacity) {
  if (cpu.size() < capacity) {
    cpu.push_back(cpu_frac);
    comm.push_back(comm_frac);
  } else {
    cpu[next] = cpu_frac;
    comm[next] = comm_frac;
    next = (next + 1) % capacity;
  }
  filled = cpu.size();
}

double PerformanceConsultant::Window::mean_cpu() const {
  if (cpu.empty()) return 0.0;
  double acc = 0.0;
  for (const double v : cpu) acc += v;
  return acc / static_cast<double>(cpu.size());
}

double PerformanceConsultant::Window::mean_comm() const {
  if (comm.empty()) return 0.0;
  double acc = 0.0;
  for (const double v : comm) acc += v;
  return acc / static_cast<double>(comm.size());
}

std::vector<Finding> PerformanceConsultant::search_and_record() {
  auto findings = search();
  for (const auto& f : findings) {
    Episode* existing = nullptr;
    for (auto& e : history_) {
      if (e.hypothesis == f.hypothesis && e.focus.whole_program == f.focus.whole_program &&
          e.focus.node == f.focus.node && e.focus.process == f.focus.process) {
        existing = &e;
        break;
      }
    }
    if (existing == nullptr) {
      Episode e;
      e.hypothesis = f.hypothesis;
      e.focus = f.focus;
      e.first_confirmed_us = now_us_;
      e.last_confirmed_us = now_us_;
      e.confirmations = 1;
      history_.push_back(e);
    } else {
      existing->last_confirmed_us = now_us_;
      ++existing->confirmations;
    }
  }
  return findings;
}

void PerformanceConsultant::observe(const rocc::Sample& sample) {
  now_us_ = std::max(now_us_, sample.generated_at);
  // Clamp against scheduling jitter: a burst completing right after a tick
  // can report a fraction slightly above 1.
  const double cpu = std::clamp(sample.cpu_fraction, 0.0, 1.0);
  const double comm = std::clamp(sample.comm_fraction, 0.0, 1.0);
  per_node_[sample.node].push(cpu, comm, config_.window);
  per_process_[{sample.node, sample.app_index}].push(cpu, comm, config_.window);
  global_.push(cpu, comm, config_.window * std::max<std::size_t>(per_node_.size(), 1));
  ++observed_;
}

double PerformanceConsultant::metric_of(const Window& w, Hypothesis h) const {
  switch (h) {
    case Hypothesis::CpuBound:
      return w.mean_cpu();
    case Hypothesis::CommunicationBound:
      return w.mean_comm();
    case Hypothesis::SyncWaiting:
      return std::max(0.0, 1.0 - w.mean_cpu() - w.mean_comm());
  }
  return 0.0;
}

double PerformanceConsultant::threshold_of(Hypothesis h) const {
  switch (h) {
    case Hypothesis::CpuBound:
      return config_.cpu_bound_threshold;
    case Hypothesis::CommunicationBound:
      return config_.comm_bound_threshold;
    case Hypothesis::SyncWaiting:
      return config_.sync_waiting_threshold;
  }
  return 1.0;
}

double PerformanceConsultant::node_mean(Hypothesis h, std::int32_t node) const {
  const auto it = per_node_.find(node);
  if (it == per_node_.end()) return 0.0;
  return metric_of(it->second, h);
}

double PerformanceConsultant::process_mean(Hypothesis h, std::int32_t node,
                                           std::int32_t process) const {
  const auto it = per_process_.find({node, process});
  if (it == per_process_.end()) return 0.0;
  return metric_of(it->second, h);
}

double PerformanceConsultant::global_mean(Hypothesis h) const {
  return metric_of(global_, h);
}

std::vector<std::int32_t> PerformanceConsultant::known_nodes() const {
  std::vector<std::int32_t> nodes;
  nodes.reserve(per_node_.size());
  for (const auto& [node, window] : per_node_) nodes.push_back(node);
  return nodes;
}

std::vector<Finding> PerformanceConsultant::search() const {
  std::vector<Finding> findings;
  if (global_.filled < config_.min_samples) return findings;

  for (const Hypothesis h : {Hypothesis::CpuBound, Hypothesis::CommunicationBound,
                             Hypothesis::SyncWaiting}) {
    const double global = metric_of(global_, h);
    const double threshold = threshold_of(h);
    const bool global_true = global >= threshold;
    if (global_true) {
      Finding f;
      f.hypothesis = h;
      f.focus = Focus{true, -1};
      f.observed = global;
      f.threshold = threshold;
      f.samples = global_.filled;
      findings.push_back(f);
    }

    // "Where" refinement: per-node foci that exceed the threshold and
    // stand out from the global mean.  Run even when the global test is
    // false — a single hot node can hide in the whole-program average
    // (exactly why W3 refines along the resource hierarchy).
    std::vector<Finding> refined;
    for (const auto& [node, window] : per_node_) {
      if (window.filled < config_.min_samples) continue;
      const double value = metric_of(window, h);
      if (value >= threshold && value >= global + config_.refinement_margin) {
        Finding f;
        f.hypothesis = h;
        f.focus = Focus{false, node, -1};
        f.observed = value;
        f.threshold = threshold;
        f.samples = window.filled;
        refined.push_back(f);

        // Second refinement level: processes on the flagged node that
        // stand out from their node's mean (only meaningful when the node
        // hosts more than one instrumented process).
        std::size_t processes_on_node = 0;
        for (const auto& [key, pw] : per_process_) {
          if (key.first == node) ++processes_on_node;
        }
        if (processes_on_node > 1) {
          for (const auto& [key, pw] : per_process_) {
            if (key.first != node || pw.filled < config_.min_samples) continue;
            const double pv = metric_of(pw, h);
            if (pv >= threshold && pv >= value + config_.refinement_margin) {
              Finding pf;
              pf.hypothesis = h;
              pf.focus = Focus{false, node, key.second};
              pf.observed = pv;
              pf.threshold = threshold;
              pf.samples = pw.filled;
              refined.push_back(pf);
            }
          }
        }
      }
    }
    std::sort(refined.begin(), refined.end(),
              [](const Finding& a, const Finding& b) { return a.observed > b.observed; });
    findings.insert(findings.end(), refined.begin(), refined.end());
  }
  return findings;
}

}  // namespace paradyn::consultant
