#include "consultant/fault_detector.hpp"

#include <algorithm>
#include <string>
#include <utility>

namespace paradyn::consultant {

FaultDetector::FaultDetector(rocc::FaultPlan plan, DetectorConfig config)
    : config_(config), consultant_(config.consultant) {
  tracked_.reserve(plan.faults.size());
  for (const rocc::FaultSpec& f : plan.faults) {
    Tracked t;
    t.spec = f;
    tracked_.push_back(std::move(t));
  }
}

std::string FaultDetector::signature(rocc::SimTime now) const {
  // Sort the finding labels so the fingerprint is insensitive to the
  // severity ordering of search() — a rank swap between two persistent
  // findings is not a behavioral change.
  std::vector<std::string> parts;
  for (const Finding& f : consultant_.search()) {
    parts.push_back(std::string(to_string(f.hypothesis)) + "@" + f.focus.describe());
  }
  const rocc::SimTime horizon = config_.starvation_factor * config_.sampling_period_us;
  for (const auto& [node, seen] : last_seen_) {
    if (now - seen > horizon) parts.push_back("starved@node " + std::to_string(node));
  }
  std::sort(parts.begin(), parts.end());
  std::string sig;
  for (const std::string& p : parts) {
    sig += p;
    sig += ';';
  }
  return sig;
}

void FaultDetector::evaluate(rocc::SimTime now) {
  const std::string sig = signature(now);
  for (std::size_t i = 0; i < tracked_.size(); ++i) {
    Tracked& t = tracked_[i];
    if (now < t.spec.start_us) {
      t.baseline = sig;
    } else if (!t.detected) {
      if (sig != t.baseline) {
        t.detected = true;
        t.detected_at = now;
        if (on_detect_) on_detect_(i, now);
      }
    } else if (!t.recovered && now >= t.spec.end_us() && sig == t.baseline) {
      t.recovered = true;
      t.recovered_at = now;
    }
  }
}

void FaultDetector::observe(const rocc::Sample& sample, rocc::SimTime delivered_at) {
  last_seen_[sample.node] = delivered_at;
  consultant_.observe(sample);
  evaluate(delivered_at);
}

void FaultDetector::finalize(std::vector<rocc::FaultOutcome>& outcomes) const {
  const std::size_t n = std::min(outcomes.size(), tracked_.size());
  for (std::size_t i = 0; i < n; ++i) {
    const Tracked& t = tracked_[i];
    outcomes[i].detected = t.detected;
    outcomes[i].detection_latency_us = t.detected ? t.detected_at - t.spec.start_us : -1.0;
    outcomes[i].recovered = t.recovered;
    outcomes[i].recovery_latency_us = t.recovered ? t.recovered_at - t.spec.end_us() : -1.0;
  }
}

DetectionHarness::DetectionHarness(rocc::Simulation& sim, DetectorConfig config,
                                   RepairPolicy policy) {
  const rocc::FaultPlan& plan = sim.effective_fault_plan();
  if (plan.empty() || sim.main_process() == nullptr) return;
  config.sampling_period_us = sim.config().sampling_period_us;
  detector_ = std::make_unique<FaultDetector>(plan, config);
  FaultDetector* detector = detector_.get();
  des::Engine* engine = &sim.engine();
  // Replaces any previously attached sample sink.
  sim.main_process()->set_sample_sink(
      [detector, engine](const rocc::Sample& s) { detector->observe(s, engine->now()); });
  if (!policy.empty()) {
    policy.validate();
    repair_ = std::make_unique<RepairEngine>(sim, std::move(policy));
    detector_->set_detection_callback(
        [repair = repair_.get()](std::size_t fault_index, rocc::SimTime now) {
          repair->on_detected(fault_index, now);
        });
  }
}

void DetectionHarness::finalize(rocc::SimulationResult& result) const {
  if (detector_) detector_->finalize(result.fault_outcomes);
  if (repair_) repair_->finalize(result.fault_outcomes);
}

rocc::SimulationResult run_with_detection(const rocc::SystemConfig& config,
                                          DetectorConfig detector_config,
                                          RepairPolicy repair_policy) {
  rocc::Simulation sim(config);
  const DetectionHarness harness(sim, detector_config, std::move(repair_policy));
  rocc::SimulationResult result = sim.run();
  harness.finalize(result);
  return result;
}

}  // namespace paradyn::consultant
