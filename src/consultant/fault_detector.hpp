// Fault detection on top of the Performance Consultant.
//
// The fault subsystem (rocc/faults.hpp) perturbs the modeled system; this
// module measures how long the *analysis side* of the IS takes to notice.
// The detector maintains a behavioral signature of the consultant's state —
// the set of confirmed (hypothesis, focus) findings plus the set of
// sample-starved nodes — and compares it against the signature last seen
// before each fault's injection time:
//
//   detection latency = injection time -> first signature change, and
//   recovery latency  = window end     -> first return to the baseline,
//
// both measured in *delivery* time: the detector only sees samples that
// have paid the full collection/forwarding path, so monitoring latency is
// part of detection latency by construction (the paper's motivation for
// treating latency as a first-class IS metric).
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "consultant/consultant.hpp"
#include "consultant/repair.hpp"
#include "rocc/faults.hpp"
#include "rocc/metrics.hpp"
#include "rocc/simulation.hpp"

namespace paradyn::consultant {

struct DetectorConfig {
  ConsultantConfig consultant;
  /// Nominal sampling period of the run (sets the starvation horizon).
  rocc::SimTime sampling_period_us = 40'000.0;
  /// A node counts as sample-starved when nothing arrived from it for this
  /// many sampling periods (stalls and crashes starve their whole domain).
  double starvation_factor = 4.0;
};

/// Streaming detector: feed every delivered sample, read per-fault
/// detection/recovery latencies at the end of the run.
class FaultDetector {
 public:
  FaultDetector(rocc::FaultPlan plan, DetectorConfig config);

  /// Feed one delivered sample; `delivered_at` is the simulated delivery
  /// time (wire to MainParadyn's sink with the engine clock).
  void observe(const rocc::Sample& sample, rocc::SimTime delivered_at);

  /// Copy detection/recovery results into `outcomes` (which must be the
  /// simulation's fault_outcomes, in plan order).
  void finalize(std::vector<rocc::FaultOutcome>& outcomes) const;

  /// Invoked once per tracked fault at its first signature divergence —
  /// the hook the RepairEngine hangs its first attempt on.  Runs inside
  /// observe(), so it may schedule engine events.
  using DetectionCallback = std::function<void(std::size_t fault_index, rocc::SimTime now)>;
  void set_detection_callback(DetectionCallback cb) { on_detect_ = std::move(cb); }

  [[nodiscard]] const PerformanceConsultant& consultant() const noexcept {
    return consultant_;
  }

 private:
  struct Tracked {
    rocc::FaultSpec spec;
    std::string baseline;  ///< Signature last seen before spec.start_us.
    bool detected = false;
    rocc::SimTime detected_at = 0.0;
    bool recovered = false;
    rocc::SimTime recovered_at = 0.0;
  };

  /// Findings fingerprint + starved-node set at `now`.
  [[nodiscard]] std::string signature(rocc::SimTime now) const;
  void evaluate(rocc::SimTime now);

  DetectorConfig config_;
  PerformanceConsultant consultant_;
  std::vector<Tracked> tracked_;
  DetectionCallback on_detect_;
  /// Last delivery time per node (starvation bookkeeping).
  std::map<std::int32_t, rocc::SimTime> last_seen_;
};

/// Ties a FaultDetector to a Simulation for one run: attaches the main
/// process's sample sink before run(), arms the repair engine when a
/// policy is given, and copies the measured latencies (and repair records)
/// into the result afterwards.  Keep the harness alive across run().
class DetectionHarness {
 public:
  /// No-op when instrumentation is disabled or the fault plan is empty.
  /// A non-empty `policy` closes the loop: detections trigger repair
  /// attempts through the simulation's repair API.
  explicit DetectionHarness(rocc::Simulation& sim, DetectorConfig config = {},
                            RepairPolicy policy = {});

  /// Fill result.fault_outcomes with detection/recovery latencies plus the
  /// per-fault repair block when a policy was armed.
  void finalize(rocc::SimulationResult& result) const;

  [[nodiscard]] const FaultDetector* detector() const noexcept { return detector_.get(); }
  [[nodiscard]] const RepairEngine* repair_engine() const noexcept { return repair_.get(); }

 private:
  std::unique_ptr<FaultDetector> detector_;
  std::unique_ptr<RepairEngine> repair_;
};

/// Convenience: run one simulation with fault detection (and optionally
/// the repair loop) attached.
[[nodiscard]] rocc::SimulationResult run_with_detection(const rocc::SystemConfig& config,
                                                        DetectorConfig detector_config = {},
                                                        RepairPolicy repair_policy = {});

}  // namespace paradyn::consultant
