// Fault detection on top of the Performance Consultant.
//
// The fault subsystem (rocc/faults.hpp) perturbs the modeled system; this
// module measures how long the *analysis side* of the IS takes to notice.
// The detector maintains a behavioral signature of the consultant's state —
// the set of confirmed (hypothesis, focus) findings plus the set of
// sample-starved nodes — and compares it against the signature last seen
// before each fault's injection time:
//
//   detection latency = injection time -> first signature change, and
//   recovery latency  = window end     -> first return to the baseline,
//
// both measured in *delivery* time: the detector only sees samples that
// have paid the full collection/forwarding path, so monitoring latency is
// part of detection latency by construction (the paper's motivation for
// treating latency as a first-class IS metric).
#pragma once

#include <memory>
#include <vector>

#include "consultant/consultant.hpp"
#include "rocc/faults.hpp"
#include "rocc/metrics.hpp"
#include "rocc/simulation.hpp"

namespace paradyn::consultant {

struct DetectorConfig {
  ConsultantConfig consultant;
  /// Nominal sampling period of the run (sets the starvation horizon).
  rocc::SimTime sampling_period_us = 40'000.0;
  /// A node counts as sample-starved when nothing arrived from it for this
  /// many sampling periods (stalls and crashes starve their whole domain).
  double starvation_factor = 4.0;
};

/// Streaming detector: feed every delivered sample, read per-fault
/// detection/recovery latencies at the end of the run.
class FaultDetector {
 public:
  FaultDetector(rocc::FaultPlan plan, DetectorConfig config);

  /// Feed one delivered sample; `delivered_at` is the simulated delivery
  /// time (wire to MainParadyn's sink with the engine clock).
  void observe(const rocc::Sample& sample, rocc::SimTime delivered_at);

  /// Copy detection/recovery results into `outcomes` (which must be the
  /// simulation's fault_outcomes, in plan order).
  void finalize(std::vector<rocc::FaultOutcome>& outcomes) const;

  [[nodiscard]] const PerformanceConsultant& consultant() const noexcept {
    return consultant_;
  }

 private:
  struct Tracked {
    rocc::FaultSpec spec;
    std::string baseline;  ///< Signature last seen before spec.start_us.
    bool detected = false;
    rocc::SimTime detected_at = 0.0;
    bool recovered = false;
    rocc::SimTime recovered_at = 0.0;
  };

  /// Findings fingerprint + starved-node set at `now`.
  [[nodiscard]] std::string signature(rocc::SimTime now) const;
  void evaluate(rocc::SimTime now);

  DetectorConfig config_;
  PerformanceConsultant consultant_;
  std::vector<Tracked> tracked_;
  /// Last delivery time per node (starvation bookkeeping).
  std::map<std::int32_t, rocc::SimTime> last_seen_;
};

/// Ties a FaultDetector to a Simulation for one run: attaches the main
/// process's sample sink before run(), and copies the measured latencies
/// into the result afterwards.  Keep the harness alive across run().
class DetectionHarness {
 public:
  /// No-op when instrumentation is disabled or the fault plan is empty.
  explicit DetectionHarness(rocc::Simulation& sim, DetectorConfig config = {});

  /// Fill result.fault_outcomes with detection/recovery latencies.
  void finalize(rocc::SimulationResult& result) const;

  [[nodiscard]] const FaultDetector* detector() const noexcept { return detector_.get(); }

 private:
  std::unique_ptr<FaultDetector> detector_;
};

/// Convenience: run one simulation with fault detection attached.
[[nodiscard]] rocc::SimulationResult run_with_detection(const rocc::SystemConfig& config,
                                                        DetectorConfig detector_config = {});

}  // namespace paradyn::consultant
