#include "consultant/repair.hpp"

#include <cstdio>
#include <set>
#include <stdexcept>

#include "util/spec_grammar.hpp"
#include "util/suggest.hpp"

namespace paradyn::consultant {
namespace {

using util::SpecCtx;
using util::parse_number;
using util::parse_time_us;

[[noreturn]] void bad(const SpecCtx& c, std::size_t local_pos, const std::string& why) {
  util::bad_spec(c, local_pos, why);
}

const std::set<std::string>& known_actions() {
  static const std::set<std::string> names = {"restart_daemon", "reroute_link", "reset_pipe"};
  return names;
}

const std::set<std::string>& known_repair_keys() {
  static const std::set<std::string> names = {"timeout", "max_retries", "backoff", "jitter",
                                              "success_p", "penalty",     "threshold"};
  return names;
}

std::int32_t parse_count(const SpecCtx& c, std::size_t pos, const std::string& text) {
  const double v = parse_number(c, pos, text);
  const auto i = static_cast<std::int32_t>(v);
  if (static_cast<double>(i) != v || i < 1) bad(c, pos, "expected an integer >= 1: " + text);
  return i;
}

RepairSpec parse_spec_impl(const SpecCtx& c) {
  const std::string& spec = c.spec;
  const auto colon = spec.find(':');
  const std::string action_name = spec.substr(0, colon);

  RepairSpec r;
  if (action_name == "restart_daemon") {
    r.action = RepairAction::RestartDaemon;
  } else if (action_name == "reroute_link") {
    r.action = RepairAction::RerouteLink;
  } else if (action_name == "reset_pipe") {
    r.action = RepairAction::ResetPipe;
  } else {
    bad(c, 0,
        "unknown repair action: " + action_name + util::did_you_mean(action_name, known_actions()));
  }

  std::size_t pos = colon == std::string::npos ? spec.size() : colon + 1;
  while (pos < spec.size()) {
    const auto comma = spec.find(',', pos);
    const std::size_t end = comma == std::string::npos ? spec.size() : comma;
    const std::string kv = spec.substr(pos, end - pos);
    const std::size_t kv_pos = pos;
    pos = end + 1;
    if (kv.empty()) continue;
    const auto eq = kv.find('=');
    if (eq == std::string::npos) bad(c, kv_pos, "expected key=value, got: " + kv);
    const std::string key = kv.substr(0, eq);
    const std::string value = kv.substr(eq + 1);
    const std::size_t value_pos = kv_pos + eq + 1;
    if (key == "timeout") {
      r.timeout_us = parse_time_us(c, value_pos, value);
      if (!(r.timeout_us > 0.0)) bad(c, value_pos, "timeout must be > 0");
    } else if (key == "max_retries") {
      r.max_retries = parse_count(c, value_pos, value);
    } else if (key == "backoff") {
      // "exp:BASE" or "fixed:BASE".
      const auto sep = value.find(':');
      if (sep == std::string::npos) bad(c, value_pos, "expected exp:BASE or fixed:BASE");
      const std::string kind = value.substr(0, sep);
      if (kind == "exp" || kind == "exponential") {
        r.backoff = BackoffKind::Exponential;
      } else if (kind == "fixed") {
        r.backoff = BackoffKind::Fixed;
      } else {
        bad(c, value_pos, "unknown backoff kind: " + kind +
                              util::did_you_mean(kind, {"exp", "fixed"}));
      }
      r.backoff_base_us = parse_time_us(c, value_pos + sep + 1, value.substr(sep + 1));
      if (r.backoff_base_us < 0.0) bad(c, value_pos + sep + 1, "backoff base must be >= 0");
    } else if (key == "jitter") {
      r.jitter = parse_number(c, value_pos, value);
      if (r.jitter < 0.0 || r.jitter > 1.0) bad(c, value_pos, "jitter must be in [0, 1]");
    } else if (key == "success_p") {
      r.success_p = parse_number(c, value_pos, value);
      if (r.success_p < 0.0 || r.success_p > 1.0) {
        bad(c, value_pos, "success_p must be in [0, 1]");
      }
    } else if (key == "penalty") {
      if (r.action != RepairAction::RerouteLink) {
        bad(c, kv_pos, "penalty only applies to reroute_link");
      }
      r.penalty = parse_number(c, value_pos, value);
      if (!(r.penalty >= 1.0)) bad(c, value_pos, "penalty must be >= 1");
    } else if (key == "threshold") {
      if (r.action != RepairAction::RerouteLink) {
        bad(c, kv_pos, "threshold only applies to reroute_link");
      }
      r.threshold = parse_number(c, value_pos, value);
      if (r.threshold < 0.0) bad(c, value_pos, "threshold must be >= 0");
    } else {
      bad(c, kv_pos, "unknown key: " + key + util::did_you_mean(key, known_repair_keys()));
    }
  }
  return r;
}

}  // namespace

const char* to_string(RepairAction a) noexcept {
  switch (a) {
    case RepairAction::RestartDaemon:
      return "restart_daemon";
    case RepairAction::RerouteLink:
      return "reroute_link";
    case RepairAction::ResetPipe:
      return "reset_pipe";
  }
  return "?";
}

bool RepairSpec::matches(rocc::FaultType t) const noexcept {
  switch (action) {
    case RepairAction::RestartDaemon:
      return t == rocc::FaultType::DaemonStall || t == rocc::FaultType::DaemonCrash;
    case RepairAction::RerouteLink:
      return t == rocc::FaultType::LinkSlowdown;
    case RepairAction::ResetPipe:
      return t == rocc::FaultType::PipeBackpressure;
  }
  return false;
}

std::string RepairSpec::describe() const {
  char buf[192];
  std::snprintf(buf, sizeof(buf), "%s timeout=%gus retries=%d backoff=%s:%gus p=%g",
                to_string(action), timeout_us, max_retries,
                backoff == BackoffKind::Exponential ? "exp" : "fixed", backoff_base_us,
                success_p);
  std::string out = buf;
  if (action == RepairAction::RerouteLink) {
    std::snprintf(buf, sizeof(buf), " penalty=%g threshold=%g", penalty, threshold);
    out += buf;
  }
  return out;
}

RepairSpec RepairPolicy::parse_spec(const std::string& spec) {
  return parse_spec_impl(SpecCtx{"RepairPolicy", spec, 1, 0});
}

RepairPolicy RepairPolicy::parse(const std::string& specs) {
  RepairPolicy policy;
  std::size_t at = 0;
  std::size_t clause_no = 0;
  while (at <= specs.size()) {
    const auto semi = specs.find(';', at);
    const std::size_t end = semi == std::string::npos ? specs.size() : semi;
    const std::string one = specs.substr(at, end - at);
    if (!one.empty()) {
      ++clause_no;
      policy.actions.push_back(parse_spec_impl(SpecCtx{"RepairPolicy", one, clause_no, at}));
    }
    if (semi == std::string::npos) break;
    at = semi + 1;
  }
  if (policy.actions.empty()) {
    throw std::invalid_argument("RepairPolicy: no action specs in \"" + specs + "\"");
  }
  return policy;
}

void RepairPolicy::validate() const {
  for (const RepairSpec& r : actions) {
    const std::string what = r.describe();
    if (!(r.timeout_us > 0.0)) {
      throw std::invalid_argument("RepairPolicy: timeout must be > 0: " + what);
    }
    if (r.max_retries < 1) {
      throw std::invalid_argument("RepairPolicy: max_retries must be >= 1: " + what);
    }
    if (r.backoff_base_us < 0.0) {
      throw std::invalid_argument("RepairPolicy: backoff base must be >= 0: " + what);
    }
    if (r.jitter < 0.0 || r.jitter > 1.0) {
      throw std::invalid_argument("RepairPolicy: jitter must be in [0, 1]: " + what);
    }
    if (r.success_p < 0.0 || r.success_p > 1.0) {
      throw std::invalid_argument("RepairPolicy: success_p must be in [0, 1]: " + what);
    }
    if (!(r.penalty >= 1.0)) {
      throw std::invalid_argument("RepairPolicy: penalty must be >= 1: " + what);
    }
    if (r.threshold < 0.0) {
      throw std::invalid_argument("RepairPolicy: threshold must be >= 0: " + what);
    }
  }
}

const RepairSpec* RepairPolicy::match(const rocc::FaultSpec& f) const noexcept {
  for (const RepairSpec& r : actions) {
    if (!r.matches(f.type)) continue;
    if (r.action == RepairAction::RerouteLink && f.magnitude < r.threshold) continue;
    return &r;
  }
  return nullptr;
}

RepairEngine::RepairEngine(rocc::Simulation& sim, RepairPolicy policy)
    : sim_(sim),
      policy_(std::move(policy)),
      rng_(sim.config().seed, 0, rocc::kRepairRngTag) {
  const rocc::FaultPlan& plan = sim_.effective_fault_plan();
  matched_.reserve(plan.faults.size());
  for (const rocc::FaultSpec& f : plan.faults) matched_.push_back(policy_.match(f));
  records_.assign(plan.faults.size(), {});
}

void RepairEngine::on_detected(std::size_t fault_index, rocc::SimTime /*now*/) {
  if (fault_index >= records_.size()) return;
  const RepairSpec* spec = matched_[fault_index];
  Record& rec = records_[fault_index];
  if (spec == nullptr || rec.attempted) return;
  rec.attempted = true;
  // Attempt 1 starts now and occupies one timeout window before resolving.
  sim_.engine().schedule_after(spec->timeout_us,
                               [this, fault_index] { resolve_attempt(fault_index, 1); });
}

void RepairEngine::resolve_attempt(std::size_t fault_index, std::int32_t attempt) {
  const RepairSpec& spec = *matched_[fault_index];
  Record& rec = records_[fault_index];
  rec.attempts = static_cast<std::uint32_t>(attempt);
  const rocc::FaultSpec& fault = sim_.effective_fault_plan().faults[fault_index];
  const rocc::SimTime now = sim_.engine().now();
  if (now >= fault.end_us()) return;  // lifted naturally mid-repair
  // One Bernoulli draw per resolved attempt, always, so the repair stream's
  // consumption depends only on the schedule — not on float comparisons.
  const bool success = rng_.next_double() < spec.success_p;
  if (success) {
    if (!apply(fault_index)) return;  // effect already gone; nothing to repair
    rec.repaired = true;
    rec.time_to_repair_us = now - fault.start_us;
    return;
  }
  if (attempt >= spec.max_retries) {
    rec.gave_up = true;
    return;
  }
  double backoff = spec.backoff_base_us;
  if (spec.backoff == BackoffKind::Exponential) {
    for (std::int32_t k = 1; k < attempt; ++k) backoff *= 2.0;
  }
  if (spec.jitter > 0.0) backoff *= 1.0 + spec.jitter * rng_.next_double();
  rec.backoff_us += backoff;
  sim_.engine().schedule_after(backoff + spec.timeout_us, [this, fault_index, attempt] {
    resolve_attempt(fault_index, attempt + 1);
  });
}

bool RepairEngine::apply(std::size_t fault_index) {
  const RepairSpec& spec = *matched_[fault_index];
  switch (spec.action) {
    case RepairAction::RestartDaemon:
      return sim_.repair_restart_daemon(fault_index);
    case RepairAction::RerouteLink:
      return sim_.repair_reroute_link(fault_index, spec.penalty);
    case RepairAction::ResetPipe:
      return sim_.repair_reset_pipe(fault_index);
  }
  return false;
}

void RepairEngine::finalize(std::vector<rocc::FaultOutcome>& outcomes) const {
  const std::size_t n = std::min(outcomes.size(), records_.size());
  for (std::size_t i = 0; i < n; ++i) {
    const Record& rec = records_[i];
    outcomes[i].repair_attempted = rec.attempted;
    outcomes[i].repair_attempts = rec.attempts;
    outcomes[i].repaired = rec.repaired;
    outcomes[i].gave_up = rec.gave_up;
    outcomes[i].time_to_repair_us = rec.time_to_repair_us;
    outcomes[i].repair_backoff_us = rec.backoff_us;
  }
}

}  // namespace paradyn::consultant
