// Consultant-driven repair: the acting half of the resilience loop.
//
// The fault subsystem (rocc/faults.hpp) perturbs the modeled system and the
// FaultDetector measures how long the analysis side takes to notice; this
// module closes the loop by *acting* on the detection signal.  A
// RepairPolicy maps fault types to repair actions with realistic
// retry/timeout/backoff semantics, and the RepairEngine schedules the
// attempts as ordinary calendar-queue events, so repair runs stay
// deterministic across --jobs values and bit-identical under both event
// queue implementations.
//
// Policy grammar (one action; join several with ';'):
//
//   restart_daemon[:timeout=500ms,max_retries=3,backoff=exp:200ms,
//                   jitter=0.1,success_p=0.9]
//   reroute_link[:penalty=1.5,threshold=2,...]
//   reset_pipe[:...]
//
// Times accept us / ms / s suffixes (bare numbers are microseconds).  An
// action matches fault types by kind: restart_daemon repairs
// daemon_stall / daemon_crash, reroute_link repairs link_slow, reset_pipe
// repairs pipe_backpressure; sample_drop is unrepairable.  The first
// declared action matching a fault's type handles it.
//
// Attempt lifecycle: when the detector first flags a fault, the matching
// action starts attempt 1, which occupies `timeout` of simulated time and
// then resolves by a Bernoulli draw with `success_p` from the dedicated
// kRepairRngTag stream (derived only when a policy is armed, so repair-free
// runs consume zero randomness).  Success applies the repair through the
// Simulation's repair API and records time_to_repair (injection -> repair
// completion, the MTTR numerator).  Failure backs off —
// base * 2^(attempt-1) for exp, base for fixed, times (1 + jitter * U) —
// and retries until the attempt budget `max_retries` is spent, which ends
// in the terminal `gave_up` outcome.  A fault whose window lifts naturally
// mid-repair just stops retrying (neither repaired nor gave_up).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "des/random.hpp"
#include "rocc/faults.hpp"
#include "rocc/simulation.hpp"

namespace paradyn::consultant {

enum class RepairAction : std::uint8_t {
  RestartDaemon,  ///< Kill + re-warm a stalled/crashed daemon (buffered loss).
  RerouteLink,    ///< Shift a slowed link's traffic to a fallback path.
  ResetPipe,      ///< Drain + unclamp a backpressured pipe.
};

[[nodiscard]] const char* to_string(RepairAction a) noexcept;

enum class BackoffKind : std::uint8_t { Exponential, Fixed };

struct RepairSpec {
  RepairAction action = RepairAction::RestartDaemon;
  /// Each attempt occupies this window before its outcome resolves.
  rocc::SimTime timeout_us = 500'000.0;
  /// Total attempt budget (>= 1); exhausting it yields `gave_up`.
  std::int32_t max_retries = 3;
  BackoffKind backoff = BackoffKind::Exponential;
  rocc::SimTime backoff_base_us = 200'000.0;
  /// Uniform jitter fraction on each backoff: b *= 1 + jitter * U[0, 1).
  double jitter = 0.0;
  /// Per-attempt success probability (1 = always; 0 forces gave_up).
  double success_p = 1.0;
  /// reroute_link only: the fallback path's capacity penalty (>= 1) that
  /// replaces the faulty link's slowdown factor.
  double penalty = 1.5;
  /// reroute_link only: engage only when the fault's slowdown factor is at
  /// least this (0 = always reroute).
  double threshold = 0.0;

  /// True when this action repairs faults of type `t`.
  [[nodiscard]] bool matches(rocc::FaultType t) const noexcept;
  /// "restart_daemon timeout=500000us retries=3 backoff=exp:200000us p=1".
  [[nodiscard]] std::string describe() const;
};

/// An ordered set of repair actions — the compiled --repair payload.
struct RepairPolicy {
  std::vector<RepairSpec> actions;

  [[nodiscard]] bool empty() const noexcept { return actions.empty(); }

  /// Parse one action spec (the grammar above, without ';').  Throws
  /// std::invalid_argument naming the offending token, its character
  /// position, and — for misspelled actions/keys — the nearest known name.
  [[nodiscard]] static RepairSpec parse_spec(const std::string& spec);

  /// Parse a ';'-joined action list (the --repair flag payload).
  [[nodiscard]] static RepairPolicy parse(const std::string& specs);

  /// Range-check every action (parse() already did; for programmatic
  /// construction).  Throws std::invalid_argument.
  void validate() const;

  /// First declared action matching the fault's type and threshold, or
  /// nullptr when the fault is unrepairable under this policy.
  [[nodiscard]] const RepairSpec* match(const rocc::FaultSpec& f) const noexcept;
};

/// Drives repair attempts for one run.  Construct after the Simulation
/// (needs the resolved fault plan), wire on_detected to the FaultDetector's
/// detection callback, and finalize into the result's fault outcomes after
/// run().  DetectionHarness does all three.
class RepairEngine {
 public:
  RepairEngine(rocc::Simulation& sim, RepairPolicy policy);

  /// Detection signal: plan fault `fault_index` first diverged at `now`.
  void on_detected(std::size_t fault_index, rocc::SimTime now);

  /// Merge the per-fault repair records into the outcome rows (plan order;
  /// appended cascade-induced rows are left untouched).
  void finalize(std::vector<rocc::FaultOutcome>& outcomes) const;

 private:
  struct Record {
    bool attempted = false;
    std::uint32_t attempts = 0;
    bool repaired = false;
    bool gave_up = false;
    rocc::SimTime time_to_repair_us = -1.0;
    rocc::SimTime backoff_us = 0.0;
  };

  void resolve_attempt(std::size_t fault_index, std::int32_t attempt);
  /// Apply the action's effect through the Simulation repair API; false
  /// when the fault's effect already lifted on its own.
  bool apply(std::size_t fault_index);

  rocc::Simulation& sim_;
  RepairPolicy policy_;
  /// policy_.match result per plan fault (nullptr = unrepairable).
  std::vector<const RepairSpec*> matched_;
  des::RngStream rng_;
  std::vector<Record> records_;
};

}  // namespace paradyn::consultant
