// Structured trace recorder for the simulator's own behavior.
//
// The paper measures an instrumentation system; this module gives our
// simulator of it the same treatment: typed events (engine event-execution
// spans, CPU/network occupancy intervals, pipe enqueue/dequeue, sample
// lifecycle) recorded into bounded ring buffers and exported as Chrome
// trace-event JSON, so a run opens directly in Perfetto / chrome://tracing.
//
// Threading model: a TraceRecorder owns one bounded shard per Tracer handle.
// Each simulation (which is single-threaded) gets its own Tracer, so
// concurrent simulations under ParallelRunner write to disjoint shards and
// never contend; only tracer creation and track naming take a lock.  The
// recorder must be exported (write_chrome_json) only after the writers have
// finished.
//
// Zero-cost when disabled: instrumented components hold a `Tracer*` that is
// nullptr by default, and every hook is a single pointer test.  Event names
// and categories must be string literals (the recorder stores the pointers).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <iosfwd>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace paradyn::obs {

/// Track id used by des::Engine for its event-execution spans; model
/// entities are assigned tracks >= 1 by rocc::Simulation::set_tracer.
inline constexpr std::int32_t kEngineTrack = 0;

/// Chrome trace-event phases the recorder supports.  Complete covers spans
/// ("X"), Instant point events ("i"), Counter time series ("C"), and the
/// Async triple ("b"/"n"/"e") tracks a logical operation — here a sample's
/// life from generation to delivery — across model entities.
enum class Phase : std::uint8_t {
  Complete,
  Instant,
  Counter,
  AsyncBegin,
  AsyncInstant,
  AsyncEnd,
};

/// One recorded event.  Fixed-size POD so the ring buffer never allocates
/// on the hot path; name/category/arg names must be string literals.
struct TraceEvent {
  const char* name = nullptr;
  const char* category = nullptr;
  const char* arg0_name = nullptr;  ///< Optional numeric argument, or null.
  const char* arg1_name = nullptr;  ///< Optional second argument, or null.
  double ts_us = 0.0;               ///< Simulated time (microseconds).
  double dur_us = 0.0;              ///< Complete spans only.
  double arg0 = 0.0;
  double arg1 = 0.0;
  std::uint64_t id = 0;             ///< Async phases and Counter series only.
  std::int32_t track = 0;           ///< Rendered as the Chrome "tid".
  Phase phase = Phase::Instant;
};

class TraceRecorder;

/// Lightweight writer handle bound to one shard of a TraceRecorder.  Not
/// thread-safe itself — one Tracer belongs to one (single-threaded)
/// simulation; concurrency safety comes from shard-per-tracer ownership.
class Tracer {
 public:
  Tracer() = default;

  /// A span [ts, ts+dur] on `track`.
  void complete(const char* category, const char* name, std::int32_t track, double ts_us,
                double dur_us, const char* arg0_name = nullptr, double arg0 = 0.0,
                const char* arg1_name = nullptr, double arg1 = 0.0) noexcept {
    emit(TraceEvent{name, category, arg0_name, arg1_name, ts_us, dur_us, arg0, arg1, 0, track,
                    Phase::Complete});
  }

  /// A point event on `track`.
  void instant(const char* category, const char* name, std::int32_t track, double ts_us,
               const char* arg0_name = nullptr, double arg0 = 0.0,
               const char* arg1_name = nullptr, double arg1 = 0.0) noexcept {
    emit(TraceEvent{name, category, arg0_name, arg1_name, ts_us, 0.0, arg0, arg1, 0, track,
                    Phase::Instant});
  }

  /// One point of a counter time series named `name`.
  void counter(const char* name, double ts_us, double value) noexcept {
    emit(TraceEvent{name, "counter", nullptr, nullptr, ts_us, 0.0, value, 0.0, 0, 0,
                    Phase::Counter});
  }

  /// Async operation lifecycle; events with the same (category, name, id)
  /// chain into one labeled span in Perfetto.
  void async_begin(const char* category, const char* name, std::uint64_t id, std::int32_t track,
                   double ts_us) noexcept {
    emit(TraceEvent{name, category, nullptr, nullptr, ts_us, 0.0, 0.0, 0.0, id, track,
                    Phase::AsyncBegin});
  }
  void async_instant(const char* category, const char* name, std::uint64_t id, std::int32_t track,
                     double ts_us, const char* arg0_name = nullptr, double arg0 = 0.0) noexcept {
    emit(TraceEvent{name, category, arg0_name, nullptr, ts_us, 0.0, arg0, 0.0, id, track,
                    Phase::AsyncInstant});
  }
  void async_end(const char* category, const char* name, std::uint64_t id, std::int32_t track,
                 double ts_us, const char* arg0_name = nullptr, double arg0 = 0.0) noexcept {
    emit(TraceEvent{name, category, arg0_name, nullptr, ts_us, 0.0, arg0, 0.0, id, track,
                    Phase::AsyncEnd});
  }

  /// Human-readable label for a track of this tracer's process (shown as the
  /// thread name in Perfetto).  Takes the recorder lock — call at setup, not
  /// from hot paths.
  void set_track_name(std::int32_t track, std::string name);

  /// Chrome "pid" this tracer's events carry (one per tracer, so concurrent
  /// simulations appear as separate processes in the viewer).
  [[nodiscard]] std::int32_t pid() const noexcept { return pid_; }

  [[nodiscard]] bool attached() const noexcept { return shard_ != nullptr; }

 private:
  friend class TraceRecorder;

  struct Shard {
    explicit Shard(std::size_t cap) : capacity(cap) { events.reserve(cap); }
    std::size_t capacity;
    std::vector<TraceEvent> events;  ///< Ring once size == capacity.
    std::size_t next = 0;            ///< Overwrite position after wrap.
    std::uint64_t recorded = 0;      ///< Total emitted (kept + dropped).
    std::uint64_t dropped = 0;       ///< Overwritten (oldest-first) events.
    std::int32_t pid = 0;
  };

  Tracer(TraceRecorder* recorder, Shard* shard, std::int32_t pid)
      : recorder_(recorder), shard_(shard), pid_(pid) {}

  void emit(const TraceEvent& e) noexcept {
    Shard& s = *shard_;
    ++s.recorded;
    if (s.events.size() < s.capacity) {
      s.events.push_back(e);
      return;
    }
    // Ring is full: wrap, overwriting the oldest event (the tail of a run
    // is where stalls show; keep the most recent window).
    ++s.dropped;
    s.events[s.next] = e;
    s.next = (s.next + 1) % s.capacity;
  }

  TraceRecorder* recorder_ = nullptr;
  Shard* shard_ = nullptr;
  std::int32_t pid_ = 0;
};

class TraceRecorder {
 public:
  /// `events_per_tracer` bounds each shard; at ~80 bytes per event the
  /// default caps a shard at ~20 MB.  Oldest events are dropped on overflow
  /// (and counted).
  explicit TraceRecorder(std::size_t events_per_tracer = 1u << 18);

  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  /// Create a writer handle with its own bounded shard.  Thread-safe.
  /// `process_name` labels the tracer's process in the viewer (e.g.
  /// "rep 3" for the third replication of a parallel set).
  [[nodiscard]] Tracer create_tracer(std::string process_name = "");

  /// Totals across all shards.  Safe to call once writers are quiescent.
  [[nodiscard]] std::uint64_t recorded() const;
  [[nodiscard]] std::uint64_t dropped() const;

  /// Export everything as Chrome trace-event JSON ({"traceEvents": [...]}).
  /// Callers must ensure no tracer is concurrently writing.
  void write_chrome_json(std::ostream& os) const;

  /// Iterate every retained event — shard by shard in pid order, each shard
  /// in the chronological order write_chrome_json emits — invoking
  /// `fn(event, pid)`.  This is the inline-profiling path (`roccsim
  /// --profile`): no JSON round-trip.  Callers must ensure no tracer is
  /// concurrently writing.
  void for_each_event(
      const std::function<void(const TraceEvent& event, std::int32_t pid)>& fn) const;

  /// Track labels registered via Tracer::set_track_name: ((pid, track), label).
  [[nodiscard]] std::vector<std::pair<std::pair<std::int32_t, std::int32_t>, std::string>>
  track_labels() const;

  /// Per-shard process names, indexed by pid.
  [[nodiscard]] std::vector<std::string> process_names() const;

 private:
  friend class Tracer;

  mutable std::mutex mutex_;
  std::size_t events_per_tracer_;
  std::deque<Tracer::Shard> shards_;  ///< deque: stable addresses.
  std::vector<std::string> process_names_;
  /// (pid, track) -> label, set via Tracer::set_track_name.
  std::vector<std::pair<std::pair<std::int32_t, std::int32_t>, std::string>> track_names_;
};

}  // namespace paradyn::obs
