// Reproducibility stamps for tool/bench output.
//
// Every CSV or report this repo emits should be traceable back to the run
// that produced it: which tool, which configuration, which base seed, how
// many worker threads, and which source revision.  The stamp is written as
// '#'-prefixed comment lines so CSV consumers skip it untouched.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

namespace paradyn::obs {

/// `git describe --always --dirty` of the working tree, or "unknown" when
/// git (or the repo) is unavailable.  Cached after the first call.
[[nodiscard]] const std::string& git_describe();

struct ReproStamp {
  std::string tool;          ///< Binary name (required).
  std::string config;        ///< One-line configuration summary; may be empty.
  std::uint64_t seed = 0;    ///< Base RNG seed.
  bool has_seed = false;     ///< Benches with many internal seeds leave this unset.
  std::size_t jobs = 0;      ///< Worker threads (0 = unreported).
  std::string extra;         ///< Free-form tail (e.g. sweep axis); may be empty.

  /// Write the stamp, one "<prefix>key: value" line each; includes the git
  /// revision and the current UTC time.
  void write(std::ostream& os, const char* prefix = "# ") const;
};

}  // namespace paradyn::obs
