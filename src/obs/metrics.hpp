// Metrics registry: named counters, gauges, and histograms plus periodic
// time-series probes sampled on a simulated-time tick.
//
// The registry is the numeric companion to the trace recorder: where the
// trace answers "what happened when", the probe time series answers "how
// did queue depths / busy fractions evolve" at a fixed cadence that is
// cheap enough to leave on for long sweeps.  rocc::Simulation wires the
// standard probes (event-queue depth, pipe occupancy, per-class CPU busy
// fraction) via enable_metrics(); anything else can register its own.
//
// Not thread-safe: one registry belongs to one (single-threaded)
// simulation, mirroring the Tracer ownership model.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace paradyn::obs {

/// Monotonic event counter.
class Counter {
 public:
  void inc(std::uint64_t by = 1) noexcept { value_ += by; }
  [[nodiscard]] std::uint64_t value() const noexcept { return value_; }

 private:
  std::uint64_t value_ = 0;
};

/// Last-written point-in-time value.
class Gauge {
 public:
  void set(double v) noexcept { value_ = v; }
  [[nodiscard]] double value() const noexcept { return value_; }

 private:
  double value_ = 0.0;
};

/// Streaming histogram over non-negative values with HDR-style log-linear
/// buckets: each power-of-two range [2^(i-1), 2^i) is split into 16 equal
/// linear sub-buckets (the range [0, 1) is 16 linear sub-buckets too), so
/// percentile estimates are good to ~1/16 relative error instead of the
/// old factor-of-~1.4 power-of-two midpoint.  Still O(1) memory (fixed
/// 64 x 16 bucket array) plus exact count/sum/min/max.
class Histogram {
 public:
  static constexpr int kExpBuckets = 64;
  static constexpr int kSubBuckets = 16;
  static constexpr int kBuckets = kExpBuckets * kSubBuckets;

  void observe(double v) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] double sum() const noexcept { return sum_; }
  [[nodiscard]] double mean() const noexcept {
    return count_ ? sum_ / static_cast<double>(count_) : 0.0;
  }
  [[nodiscard]] double min() const noexcept { return count_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return count_ ? max_ : 0.0; }
  /// Estimated p-quantile (p in [0, 1]): midpoint of the log-linear
  /// sub-bucket holding the p-th observation, clamped to the observed
  /// min/max.  Relative error is bounded by the sub-bucket width (~6%).
  [[nodiscard]] double percentile(double p) const noexcept;

 private:
  std::uint64_t buckets_[kBuckets] = {};
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Insertion-ordered collection of named metrics + the probe time series.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Get-or-create.  References stay valid for the registry's lifetime.
  /// Counters and gauges are automatically included as time-series columns.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  /// Register a callback probe evaluated at every sample() tick.
  void add_probe(std::string name, std::function<double()> probe);

  /// Record one time-series row at simulated time `t_us`: every probe,
  /// counter, and gauge in registration order.
  void sample(double t_us);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }
  [[nodiscard]] const std::vector<std::string>& column_names() const noexcept { return columns_; }
  /// Row `i` as (time, values aligned with column_names()).
  [[nodiscard]] std::pair<double, const std::vector<double>*> row(std::size_t i) const {
    return {row_times_.at(i), &rows_.at(i)};
  }

  /// The probe time series as CSV: "time_us,<col>,..." then one row per
  /// tick.  Lines starting with '#' carry the histogram/counter summaries.
  void write_csv(std::ostream& os) const;

  /// Visit every histogram in registration order (structured exporters).
  void for_each_histogram(
      const std::function<void(const std::string& name, const Histogram& h)>& fn) const {
    for (const auto& [name, h] : histogram_order_) fn(name, *h);
  }

 private:
  struct Column {
    std::string name;
    std::function<double()> read;
  };

  // std::map for deterministic name lookup; deques/uniques for stable refs.
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
  std::vector<std::pair<std::string, const Histogram*>> histogram_order_;
  std::vector<Column> column_readers_;
  std::vector<std::string> columns_;
  std::vector<double> row_times_;
  std::vector<std::vector<double>> rows_;
};

}  // namespace paradyn::obs
