#include "obs/profile.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <istream>
#include <ostream>
#include <utility>

#include "obs/trace.hpp"
#include "util/json_writer.hpp"

namespace paradyn::obs {

namespace {

/// Async ids are written as "0x..." hex strings; accept decimal too.
std::uint64_t parse_chain_id(const std::string& id) {
  return std::strtoull(id.c_str(), nullptr, 0);
}

/// Which lifecycle progress mark an arg name denotes, or -1.
int mark_code(const char* name) noexcept {
  if (name == nullptr) return -1;
  if (std::strcmp(name, "enq") == 0) return 0;
  if (std::strcmp(name, "deq") == 0) return 1;
  if (std::strcmp(name, "collect") == 0) return 2;
  if (std::strcmp(name, "fwd") == 0) return 3;
  if (std::strcmp(name, "net") == 0) return 4;
  return -1;
}

bool is_lifecycle(const char* cat, const char* name) noexcept {
  return cat != nullptr && name != nullptr && std::strcmp(cat, "sample") == 0 &&
         std::strcmp(name, "lifecycle") == 0;
}

/// Insert [s, e] into a disjoint interval map, merging anything within
/// `gap` of it.
void merge_interval(std::map<double, double>& m, double s, double e, double gap) {
  if (e < s) std::swap(s, e);
  // Absorb a predecessor that reaches (within gap of) s.
  auto it = m.upper_bound(s);
  if (it != m.begin()) {
    auto prev = std::prev(it);
    if (prev->second + gap >= s) {
      s = prev->first;
      e = std::max(e, prev->second);
      m.erase(prev);
    }
  }
  // Absorb successors starting before (within gap of) e.
  for (auto next = m.upper_bound(s); next != m.end() && next->first <= e + gap;
       next = m.upper_bound(s)) {
    e = std::max(e, next->second);
    m.erase(next);
  }
  m[s] = e;
}

}  // namespace

std::string ProfileReport::track_label(std::int64_t pid, std::int32_t track) const {
  if (const auto it = labels.find({pid, track}); it != labels.end()) return it->second;
  char buf[48];
  std::snprintf(buf, sizeof(buf), "p%lld.t%d", static_cast<long long>(pid), track);
  return buf;
}

Profiler::Profiler(ProfileOptions options)
    : options_(options), top_paths_(options.top_paths) {
  if (options_.window_us <= 0.0) options_.window_us = 100'000.0;
}

void Profiler::set_track_label(std::int64_t pid, std::int32_t track, std::string label) {
  labels_[{pid, track}] = std::move(label);
}

void Profiler::set_totals(std::uint64_t recorded, std::uint64_t dropped) {
  recorded_ = recorded;
  dropped_ = dropped;
}

void Profiler::touch_ts(double ts) {
  if (!have_ts_ || ts < ts_min_us_) ts_min_us_ = ts;
  if (!have_ts_ || ts > ts_max_us_) ts_max_us_ = ts;
  have_ts_ = true;
}

Profiler::Window& Profiler::window_at(double ts) {
  double idx_f = ts / options_.window_us;
  if (!(idx_f >= 0.0)) idx_f = 0.0;  // negative / NaN timestamps -> window 0
  auto idx = static_cast<std::size_t>(idx_f);
  // Guard against absurd timestamps from malformed traces: never grow the
  // window vector past ~4M entries.
  constexpr std::size_t kMaxWindows = 1u << 22;
  if (idx >= kMaxWindows) idx = kMaxWindows - 1;
  if (idx >= windows_.size()) windows_.resize(idx + 1);
  return windows_[idx];
}

void Profiler::count_pipe_event(const char* name, double ts) {
  if (name != nullptr && std::strcmp(name, "full") == 0) ++window_at(ts).pipe_full;
}

void Profiler::observe_span(std::int64_t pid, std::int32_t track, const char* cat, double ts,
                            double dur) {
  if (dur < 0.0 || !std::isfinite(dur)) dur = 0.0;
  ResourceAccum& res = resources_[{pid, track}];
  if (res.spans == 0) res.coalesce_gap_us = options_.coalesce_gap_us;
  ++res.spans;
  merge_interval(res.intervals, ts, ts + dur, res.coalesce_gap_us);
  // Bounded memory on any input: if the timeline fragments past the cap,
  // double the coalescing gap and re-merge.
  while (res.intervals.size() > options_.max_intervals_per_resource) {
    res.coalesce_gap_us = std::max(res.coalesce_gap_us * 2.0, 1.0);
    std::map<double, double> rebuilt;
    for (const auto& [s, e] : res.intervals) merge_interval(rebuilt, s, e, res.coalesce_gap_us);
    res.intervals = std::move(rebuilt);
  }

  // ExcessiveCPU's when-axis: CPU busy time distributed over the windows
  // the span overlaps.
  if (cat != nullptr && std::strcmp(cat, "cpu") == 0 && dur > 0.0) {
    auto& busy = cpu_busy_[{pid, track}];
    const double w = options_.window_us;
    double s = std::max(ts, 0.0);
    const double e = std::max(ts + dur, s);
    while (s < e) {
      const auto idx = static_cast<std::size_t>(s / w);
      const double win_end = (static_cast<double>(idx) + 1.0) * w;
      const double chunk = std::min(e, win_end) - s;
      if (idx >= busy.size()) busy.resize(idx + 1, 0.0);
      busy[idx] += chunk;
      if (win_end <= s) break;  // paranoia against FP non-progress
      s = win_end;
    }
  }
}

void Profiler::chain_begin(std::int64_t pid, std::uint64_t id, std::int32_t track, double ts) {
  if (open_chains_.size() >= options_.max_open_chains) {
    ++chains_unmatched_;  // cannot track more; count it rather than grow
    return;
  }
  ChainTimes t;
  t.gen_ts = ts;
  t.origin_track = track;
  t.have_begin = true;
  if (!open_chains_.emplace(std::pair{pid, id}, t).second) {
    ++chains_unmatched_;  // duplicate begin: keep the first
  }
}

void Profiler::chain_mark(std::int64_t pid, std::uint64_t id, const char* mark, double ts,
                          double arg) {
  const int code = mark_code(mark);
  if (code < 0) return;
  // Window enq/deq tallies feed StarvedDaemon even when the chain's begin
  // was dropped by the ring.
  if (code == 0) ++window_at(ts).enq;
  if (code == 1) ++window_at(ts).deq;
  const auto it = open_chains_.find({pid, id});
  if (it == open_chains_.end()) return;  // begin lost; chain will count unmatched
  ChainTimes& t = it->second;
  switch (code) {
    case 0:
      if (t.enq_ts < 0.0) t.enq_ts = ts;
      break;
    case 1:
      if (t.deq_ts < 0.0) t.deq_ts = ts;
      break;
    case 2:
      if (t.collect_ts < 0.0) {
        t.collect_ts = ts;
        t.collect_svc_us = arg;
      }
      break;
    case 3:
      // First forward: later tree hops keep the earliest daemon-exit time.
      if (t.fwd_ts < 0.0 || ts < t.fwd_ts) t.fwd_ts = ts;
      break;
    case 4:
      // Last network clear; occupancies accumulate across tree hops.
      if (ts > t.net_ts) t.net_ts = ts;
      t.net_svc_us += arg;
      break;
    default:
      break;
  }
}

void Profiler::chain_end(std::int64_t pid, std::uint64_t id, double ts) {
  const auto it = open_chains_.find({pid, id});
  if (it == open_chains_.end()) {
    ++chains_unmatched_;  // end without begin
    return;
  }
  const ChainRecord rec = reduce_chain(pid, id, it->second, ts);
  open_chains_.erase(it);
  ++chains_complete_;
  if (rec.out_of_order) ++chains_out_of_order_;

  double bound = rec.start_ts_us;
  for (int h = 0; h < kHopCount; ++h) {
    hops_[h].count += 1;
    hops_[h].queue_total_us += rec.hop_queue_us[h];
    hops_[h].service_total_us += rec.hop_service_us[h];
    hops_[h].queue_us.observe(rec.hop_queue_us[h]);
    hops_[h].service_us.observe(rec.hop_service_us[h]);
    // Attribute each hop to the window where the hop *completed*, so a
    // bottleneck's when-axis lands where its latency was paid off.
    bound += rec.hop_us[h];
    Window& win = window_at(bound);
    win.hop_queue_us[h] += rec.hop_queue_us[h];
    win.hop_service_us[h] += rec.hop_service_us[h];
    win.hop_count[h] += 1;
  }
  ++window_at(rec.end_ts_us).chains;
  top_paths_.offer(rec);
  folded_.add(rec);
}

void Profiler::feed(const ParsedEvent& ev) {
  if (ev.ph == "M") {
    if (ev.name == "thread_name") {
      if (const auto it = ev.str_args.find("name"); it != ev.str_args.end()) {
        labels_[{ev.pid, static_cast<std::int32_t>(ev.tid)}] = it->second;
      }
    }
    return;
  }
  ++events_;
  touch_ts(ev.ts);
  if (ev.ph == "X") {
    touch_ts(ev.ts + ev.dur);
    observe_span(ev.pid, static_cast<std::int32_t>(ev.tid), ev.cat.c_str(), ev.ts, ev.dur);
    return;
  }
  if (ev.ph == "i") {
    if (ev.cat == "pipe") count_pipe_event(ev.name.c_str(), ev.ts);
    return;
  }
  if (ev.ph == "b" || ev.ph == "n" || ev.ph == "e") {
    if (!is_lifecycle(ev.cat.c_str(), ev.name.c_str())) return;
    const std::uint64_t id = parse_chain_id(ev.id);
    if (ev.ph == "b") {
      chain_begin(ev.pid, id, static_cast<std::int32_t>(ev.tid), ev.ts);
    } else if (ev.ph == "e") {
      chain_end(ev.pid, id, ev.ts);
    } else {
      for (const auto& [key, value] : ev.num_args) {
        chain_mark(ev.pid, id, key.c_str(), ev.ts, value);
      }
    }
  }
}

void Profiler::feed(const TraceEvent& ev, std::int32_t pid) {
  ++events_;
  touch_ts(ev.ts_us);
  switch (ev.phase) {
    case Phase::Complete:
      touch_ts(ev.ts_us + ev.dur_us);
      observe_span(pid, ev.track, ev.category, ev.ts_us, ev.dur_us);
      break;
    case Phase::Instant:
      if (ev.category != nullptr && std::strcmp(ev.category, "pipe") == 0) {
        count_pipe_event(ev.name, ev.ts_us);
      }
      break;
    case Phase::Counter:
      break;
    case Phase::AsyncBegin:
      if (is_lifecycle(ev.category, ev.name)) chain_begin(pid, ev.id, ev.track, ev.ts_us);
      break;
    case Phase::AsyncInstant:
      if (is_lifecycle(ev.category, ev.name)) {
        chain_mark(pid, ev.id, ev.arg0_name, ev.ts_us, ev.arg0);
      }
      break;
    case Phase::AsyncEnd:
      if (is_lifecycle(ev.category, ev.name)) chain_end(pid, ev.id, ev.ts_us);
      break;
  }
}

ProfileReport Profiler::finalize() {
  ProfileReport report;
  report.events = events_;
  report.recorded = recorded_;
  report.dropped = dropped_;
  report.chains_complete = chains_complete_;
  report.chains_unmatched = chains_unmatched_ + open_chains_.size();  // begins never closed
  report.chains_out_of_order = chains_out_of_order_;
  report.ts_min_us = have_ts_ ? ts_min_us_ : 0.0;
  report.ts_max_us = have_ts_ ? ts_max_us_ : 0.0;
  report.window_us = options_.window_us;
  report.labels = labels_;
  for (int h = 0; h < kHopCount; ++h) report.hops[h] = hops_[h];

  report.dominant_hop = -1;
  double dominant_total = -1.0;
  if (chains_complete_ > 0) {
    for (int h = 0; h < kHopCount; ++h) {
      const double total = hops_[h].queue_total_us + hops_[h].service_total_us;
      if (total > dominant_total) {
        dominant_total = total;
        report.dominant_hop = h;
      }
    }
  }

  const double span_us = report.ts_max_us - report.ts_min_us;
  for (const auto& [key, accum] : resources_) {
    ResourceStats rs;
    rs.pid = key.first;
    rs.track = key.second;
    rs.label = report.track_label(key.first, key.second);
    rs.spans = accum.spans;
    rs.intervals = accum.intervals.size();
    for (const auto& [s, e] : accum.intervals) {
      const double len = e - s;
      rs.busy_us += len;
      rs.max_interval_us = std::max(rs.max_interval_us, len);
    }
    rs.util_fraction = span_us > 0.0 ? rs.busy_us / span_us : 0.0;
    report.resources.push_back(std::move(rs));
  }

  report.top_chains = top_paths_.sorted_desc();
  report.folded = folded_.lines();

  // ---- W3 hypothesis pass over the fixed windows ----
  const double w_us = options_.window_us;
  const std::size_t n_windows = windows_.size();

  // held_value(w) returns the tested metric, or a negative value when the
  // hypothesis does not hold in window w.
  const auto evaluate = [&](std::string name, std::string target, int hop,
                            const std::function<double(std::size_t)>& held_value) {
    HypothesisFinding f;
    f.name = std::move(name);
    f.target = std::move(target);
    f.hop = hop;
    bool in_first_run = false;
    bool first_run_done = false;
    for (std::size_t w = 0; w < n_windows; ++w) {
      const double v = held_value(w);
      if (v < 0.0) {
        if (in_first_run) {
          in_first_run = false;
          first_run_done = true;
        }
        continue;
      }
      ++f.windows_held;
      f.peak = std::max(f.peak, v);
      if (!f.held) {
        f.held = true;
        in_first_run = true;
        f.first_held_start_us = static_cast<double>(w) * w_us;
        f.first_held_end_us = (static_cast<double>(w) + 1.0) * w_us;
      } else if (in_first_run && !first_run_done) {
        f.first_held_end_us = (static_cast<double>(w) + 1.0) * w_us;
      }
    }
    report.hypotheses.push_back(std::move(f));
  };

  // Excessive<hop>: the hop's queueing dominates the window's lifecycle
  // time AND its mean per-chain wait clears the noise floor.  When
  // `require_block` is set the window must additionally contain at least
  // one producer-blocked instant (the rocc tracer's pipe/"full" event):
  // in a work-conserving pipeline a capacity clamp conserves total wait,
  // so actual blocking — not wait share, which is large in any
  // daemon-response-dominated config — is the discriminating signature of
  // pipe backpressure.
  const auto hop_excessive = [&](int hop, bool require_block) {
    return [this, hop, require_block](std::size_t w) -> double {
      const Window& win = windows_[w];
      if (require_block && win.pipe_full == 0) return -1.0;
      double total = 0.0;
      for (int h = 0; h < kHopCount; ++h) {
        total += win.hop_queue_us[h] + win.hop_service_us[h];
      }
      if (total <= 0.0 || win.hop_count[hop] == 0) return -1.0;
      const double share = win.hop_queue_us[hop] / total;
      const double mean = win.hop_queue_us[hop] / static_cast<double>(win.hop_count[hop]);
      if (!require_block && share <= options_.hop_share_threshold) return -1.0;
      if (mean > options_.hop_wait_min_us) return share;
      return -1.0;
    };
  };

  evaluate("ExcessiveCPU", "", -1, [this](std::size_t w) -> double {
    double peak = -1.0;
    for (const auto& [key, busy] : cpu_busy_) {
      if (w >= busy.size()) continue;
      const double frac = busy[w] / options_.window_us;
      if (frac > options_.cpu_busy_threshold && frac > peak) peak = frac;
    }
    return peak;
  });
  // The where-axis for ExcessiveCPU: the CPU track with the highest busy
  // fraction in any held window (deterministic: map order, strict greater).
  {
    HypothesisFinding& cpu = report.hypotheses.back();
    if (cpu.held) {
      double best = -1.0;
      for (const auto& [key, busy] : cpu_busy_) {
        for (const double b : busy) {
          const double frac = b / options_.window_us;
          if (frac > options_.cpu_busy_threshold && frac > best) {
            best = frac;
            cpu.target = report.track_label(key.first, key.second);
          }
        }
      }
    } else {
      cpu.target = "cpu";
    }
  }

  evaluate("ExcessivePipeBackpressure", "pipe hop", static_cast<int>(Hop::Pipe),
           hop_excessive(static_cast<int>(Hop::Pipe), /*require_block=*/true));
  evaluate("ExcessiveNetworkDelay", "network hop", static_cast<int>(Hop::Network),
           hop_excessive(static_cast<int>(Hop::Network), /*require_block=*/false));
  // StarvedDaemon: samples kept entering the pipes but no daemon drained
  // anything for a whole window — the stall signature.  The final partial
  // window is excluded: the trace simply ends there with chains mid-flight,
  // which is not a stall.
  evaluate("StarvedDaemon", "daemons", /*hop=*/-1,
           [this](std::size_t w) -> double {
             if (w + 1 >= windows_.size()) return -1.0;
             const Window& win = windows_[w];
             if (win.enq > 0 && win.deq == 0) return static_cast<double>(win.enq);
             return -1.0;
           });

  return report;
}

ProfileReport profile_trace_stream(std::istream& is, ProfileOptions options) {
  Profiler profiler(options);
  const TraceStreamInfo info =
      stream_chrome_trace(is, [&](const ParsedEvent& ev) { profiler.feed(ev); });
  profiler.set_totals(info.recorded, info.dropped);
  return profiler.finalize();
}

ProfileReport profile_recorder(const TraceRecorder& recorder, ProfileOptions options) {
  Profiler profiler(options);
  for (const auto& [key, label] : recorder.track_labels()) {
    profiler.set_track_label(key.first, key.second, label);
  }
  recorder.for_each_event(
      [&](const TraceEvent& ev, std::int32_t pid) { profiler.feed(ev, pid); });
  profiler.set_totals(recorder.recorded(), recorder.dropped());
  return profiler.finalize();
}

namespace {

double hop_total_us(const ProfileReport& r) {
  double total = 0.0;
  for (int h = 0; h < kHopCount; ++h) {
    total += r.hops[h].queue_total_us + r.hops[h].service_total_us;
  }
  return total;
}

void print_hypotheses(std::ostream& os, const ProfileReport& report) {
  os << "hypotheses (W3 why/where/when):\n";
  char line[256];
  for (const auto& f : report.hypotheses) {
    if (f.held) {
      std::snprintf(line, sizeof(line),
                    "  %-26s HELD  [%0.1f ms .. %0.1f ms)  peak %.3f  target %s  (%llu "
                    "window(s))\n",
                    f.name.c_str(), f.first_held_start_us / 1e3, f.first_held_end_us / 1e3,
                    f.peak, f.target.c_str(), static_cast<unsigned long long>(f.windows_held));
    } else {
      std::snprintf(line, sizeof(line), "  %-26s not held\n", f.name.c_str());
    }
    os << line;
  }
}

}  // namespace

void print_profile_report(std::ostream& os, const ProfileReport& report, bool hypotheses_only) {
  if (hypotheses_only) {
    print_hypotheses(os, report);
    return;
  }
  char line[320];
  std::snprintf(line, sizeof(line),
                "profile: %llu events, %llu chains complete, %llu unmatched, %llu out-of-order "
                "(recorder saw %llu, dropped %llu)\n",
                static_cast<unsigned long long>(report.events),
                static_cast<unsigned long long>(report.chains_complete),
                static_cast<unsigned long long>(report.chains_unmatched),
                static_cast<unsigned long long>(report.chains_out_of_order),
                static_cast<unsigned long long>(report.recorded),
                static_cast<unsigned long long>(report.dropped));
  os << line;
  std::snprintf(line, sizeof(line), "span: %.3f ms .. %.3f ms  (window %.1f ms)\n\n",
                report.ts_min_us / 1e3, report.ts_max_us / 1e3, report.window_us / 1e3);
  os << line;

  const double total_us = hop_total_us(report);
  os << "hop decomposition (queueing vs service per delivered chain):\n";
  std::snprintf(line, sizeof(line), "  %-8s %10s %12s %12s %12s %12s %12s %7s\n", "hop",
                "chains", "q_mean_us", "q_p50_us", "q_p99_us", "svc_mean_us", "total_ms",
                "share");
  os << line;
  for (int h = 0; h < kHopCount; ++h) {
    const HopStats& hs = report.hops[h];
    const double n = hs.count > 0 ? static_cast<double>(hs.count) : 1.0;
    const double hop_total = hs.queue_total_us + hs.service_total_us;
    std::snprintf(line, sizeof(line), "  %-8s %10llu %12.2f %12.2f %12.2f %12.2f %12.3f %6.1f%%\n",
                  hop_name(h), static_cast<unsigned long long>(hs.count),
                  hs.queue_total_us / n, hs.queue_us.percentile(0.50),
                  hs.queue_us.percentile(0.99), hs.service_total_us / n, hop_total / 1e3,
                  total_us > 0.0 ? 100.0 * hop_total / total_us : 0.0);
    os << line;
  }
  if (report.dominant_hop >= 0) {
    const HopStats& dh = report.hops[report.dominant_hop];
    const double dh_total = dh.queue_total_us + dh.service_total_us;
    std::snprintf(line, sizeof(line), "dominant hop: %s (%.1f%% of lifecycle time)\n\n",
                  hop_name(report.dominant_hop),
                  total_us > 0.0 ? 100.0 * dh_total / total_us : 0.0);
    os << line;
  } else {
    os << "dominant hop: none (no complete chains)\n\n";
  }

  if (!report.resources.empty()) {
    os << "resources (busy-interval merged):\n";
    std::snprintf(line, sizeof(line), "  %-22s %10s %12s %7s %10s %14s\n", "resource", "spans",
                  "busy_ms", "util", "intervals", "max_intvl_us");
    os << line;
    for (const auto& rs : report.resources) {
      std::snprintf(line, sizeof(line), "  %-22s %10llu %12.3f %6.1f%% %10llu %14.2f\n",
                    rs.label.c_str(), static_cast<unsigned long long>(rs.spans),
                    rs.busy_us / 1e3, 100.0 * rs.util_fraction,
                    static_cast<unsigned long long>(rs.intervals), rs.max_interval_us);
      os << line;
    }
    os << '\n';
  }

  if (!report.top_chains.empty()) {
    os << "top " << report.top_chains.size() << " critical paths (slowest chains):\n";
    int rank = 1;
    for (const auto& c : report.top_chains) {
      std::snprintf(line, sizeof(line),
                    "  #%-2d id 0x%llx %-14s start %10.3f ms  latency %10.1f us  dominant %s\n",
                    rank++, static_cast<unsigned long long>(c.id),
                    report.track_label(c.pid, c.origin_track).c_str(), c.start_ts_us / 1e3,
                    c.latency_us, hop_name(c.dominant_hop));
      os << line;
      os << "      ";
      for (int h = 0; h < kHopCount; ++h) {
        std::snprintf(line, sizeof(line), "%s%s %.1f", h > 0 ? " | " : "", hop_name(h),
                      c.hop_us[h]);
        os << line;
      }
      os << '\n';
    }
    os << '\n';
  }

  print_hypotheses(os, report);
}

void write_profile_json(std::ostream& os, const ProfileReport& report) {
  namespace json = util::json;
  json::Obj root(os, 0);
  root.key("schema") << "\"roccprof-v1\"";
  json::number(root.key("events"), static_cast<double>(report.events));
  json::number(root.key("recorded"), static_cast<double>(report.recorded));
  json::number(root.key("dropped"), static_cast<double>(report.dropped));
  json::number(root.key("chains_complete"), static_cast<double>(report.chains_complete));
  json::number(root.key("chains_unmatched"), static_cast<double>(report.chains_unmatched));
  json::number(root.key("chains_out_of_order"),
               static_cast<double>(report.chains_out_of_order));
  json::number(root.key("ts_min_us"), report.ts_min_us);
  json::number(root.key("ts_max_us"), report.ts_max_us);
  json::number(root.key("window_us"), report.window_us);
  root.key("dominant_hop");
  if (report.dominant_hop >= 0) {
    json::quoted(os, hop_name(report.dominant_hop));
  } else {
    os << "null";
  }

  root.key("hops") << "[";
  for (int h = 0; h < kHopCount; ++h) {
    os << (h > 0 ? "," : "") << "\n    ";
    const HopStats& hs = report.hops[h];
    const double n = hs.count > 0 ? static_cast<double>(hs.count) : 1.0;
    json::Obj hop(os, 4);
    hop.key("hop");
    json::quoted(os, hop_name(h));
    json::number(hop.key("chains"), static_cast<double>(hs.count));
    json::number(hop.key("queue_total_us"), hs.queue_total_us);
    json::number(hop.key("queue_mean_us"), hs.queue_total_us / n);
    json::number(hop.key("queue_p50_us"), hs.queue_us.percentile(0.50));
    json::number(hop.key("queue_p99_us"), hs.queue_us.percentile(0.99));
    json::number(hop.key("service_total_us"), hs.service_total_us);
    json::number(hop.key("service_mean_us"), hs.service_total_us / n);
    hop.close();
  }
  os << "\n  ]";

  root.key("resources") << "[";
  for (std::size_t i = 0; i < report.resources.size(); ++i) {
    os << (i > 0 ? "," : "") << "\n    ";
    const ResourceStats& rs = report.resources[i];
    json::Obj res(os, 4);
    res.key("resource");
    json::quoted(os, rs.label);
    json::number(res.key("pid"), static_cast<double>(rs.pid));
    json::number(res.key("track"), static_cast<double>(rs.track));
    json::number(res.key("spans"), static_cast<double>(rs.spans));
    json::number(res.key("busy_us"), rs.busy_us);
    json::number(res.key("util"), rs.util_fraction);
    json::number(res.key("intervals"), static_cast<double>(rs.intervals));
    json::number(res.key("max_interval_us"), rs.max_interval_us);
    res.close();
  }
  os << "\n  ]";

  root.key("top_paths") << "[";
  for (std::size_t i = 0; i < report.top_chains.size(); ++i) {
    os << (i > 0 ? "," : "") << "\n    ";
    const ChainRecord& c = report.top_chains[i];
    json::Obj chain(os, 4);
    json::number(chain.key("id"), static_cast<double>(c.id));
    json::number(chain.key("pid"), static_cast<double>(c.pid));
    chain.key("origin");
    json::quoted(os, report.track_label(c.pid, c.origin_track));
    json::number(chain.key("start_us"), c.start_ts_us);
    json::number(chain.key("latency_us"), c.latency_us);
    chain.key("dominant_hop");
    json::quoted(os, hop_name(c.dominant_hop));
    chain.key("hops") << "{";
    for (int h = 0; h < kHopCount; ++h) {
      os << (h > 0 ? ", " : "");
      json::quoted(os, hop_name(h));
      os << ": ";
      json::number(os, c.hop_us[h]);
    }
    os << "}";
    chain.close();
  }
  os << "\n  ]";

  root.key("hypotheses") << "[";
  for (std::size_t i = 0; i < report.hypotheses.size(); ++i) {
    os << (i > 0 ? "," : "") << "\n    ";
    const HypothesisFinding& f = report.hypotheses[i];
    json::Obj hyp(os, 4);
    hyp.key("hypothesis");
    json::quoted(os, f.name);
    hyp.key("target");
    json::quoted(os, f.target);
    hyp.key("hop");
    if (f.hop >= 0) {
      json::quoted(os, hop_name(f.hop));
    } else {
      os << "null";
    }
    hyp.key("held") << (f.held ? "true" : "false");
    if (f.held) {
      json::number(hyp.key("first_held_start_us"), f.first_held_start_us);
      json::number(hyp.key("first_held_end_us"), f.first_held_end_us);
      json::number(hyp.key("peak"), f.peak);
      json::number(hyp.key("windows_held"), static_cast<double>(f.windows_held));
    }
    hyp.close();
  }
  os << "\n  ]";

  root.close();
  os << '\n';
}

void write_profile_csv(std::ostream& os, const ProfileReport& report) {
  namespace json = util::json;
  os << "hop,chains,queue_total_us,queue_mean_us,queue_p50_us,queue_p99_us,"
        "service_total_us,service_mean_us,share\n";
  const double total_us = hop_total_us(report);
  for (int h = 0; h < kHopCount; ++h) {
    const HopStats& hs = report.hops[h];
    const double n = hs.count > 0 ? static_cast<double>(hs.count) : 1.0;
    const double hop_total = hs.queue_total_us + hs.service_total_us;
    os << hop_name(h) << ',' << hs.count << ',';
    json::number(os, hs.queue_total_us);
    os << ',';
    json::number(os, hs.queue_total_us / n);
    os << ',';
    json::number(os, hs.queue_us.percentile(0.50));
    os << ',';
    json::number(os, hs.queue_us.percentile(0.99));
    os << ',';
    json::number(os, hs.service_total_us);
    os << ',';
    json::number(os, hs.service_total_us / n);
    os << ',';
    json::number(os, total_us > 0.0 ? hop_total / total_us : 0.0);
    os << '\n';
  }
}

void write_profile_folded(std::ostream& os, const ProfileReport& report) {
  for (const auto& line : report.folded) {
    os << report.track_label(line.pid, line.track) << ';' << hop_name(line.hop) << ' '
       << static_cast<long long>(std::llround(line.us)) << '\n';
  }
}

}  // namespace paradyn::obs
