// Reader for the Chrome trace-event JSON the TraceRecorder emits, plus the
// summary statistics behind the `rocctrace` CLI.
//
// The parser is a small, strict-enough JSON reader for the trace-event
// schema (an object with a "traceEvents" array of flat event objects); it
// is not a general-purpose JSON library, but it accepts any conforming
// trace file, including ones Perfetto or chrome://tracing would load.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

namespace paradyn::obs {

/// One event as read back from JSON.
struct ParsedEvent {
  std::string name;
  std::string cat;
  std::string ph;    ///< Chrome phase letter ("X", "i", "C", "b", "n", "e", "M", ...).
  double ts = 0.0;   ///< Microseconds.
  double dur = 0.0;  ///< Complete events only.
  std::int64_t pid = 0;
  std::int64_t tid = 0;
  std::string id;    ///< Async id (as written, e.g. "0x2a"); empty if absent.
  std::map<std::string, double> num_args;
  std::map<std::string, std::string> str_args;
};

struct ParsedTrace {
  std::vector<ParsedEvent> events;
  /// From the recorder's "otherData" block (0 when absent).
  std::uint64_t recorded = 0;
  std::uint64_t dropped = 0;
};

/// Parse a trace file.  Throws std::runtime_error with a byte offset on
/// malformed input.
[[nodiscard]] ParsedTrace read_chrome_trace(std::istream& is);

/// Totals reported by the streaming parser once the document is consumed.
struct TraceStreamInfo {
  std::uint64_t recorded = 0;  ///< From "otherData" (0 when absent).
  std::uint64_t dropped = 0;
  std::uint64_t events = 0;  ///< Events delivered to the sink.
};

/// Streaming parse: decode the document incrementally through a bounded
/// read buffer (never slurps the file) and invoke `sink` once per event,
/// metadata included.  The ParsedEvent reference is only valid for the
/// duration of the call — the same scratch object is reused.  This is the
/// path the profiler uses so arbitrarily large traces cost O(1) parser
/// memory.  Throws std::runtime_error with a byte offset on malformed
/// input.
TraceStreamInfo stream_chrome_trace(std::istream& is,
                                    const std::function<void(const ParsedEvent&)>& sink);

/// Aggregate statistics of one (category, name) event type.
struct EventTypeStats {
  std::string cat;
  std::string name;
  std::uint64_t count = 0;
  double total_dur_us = 0.0;  ///< Complete events only.
  double max_dur_us = 0.0;
};

/// Duration percentiles of matched async begin/end chains.
struct AsyncChainStats {
  std::string cat;
  std::string name;
  std::uint64_t complete_chains = 0;
  std::uint64_t unmatched = 0;  ///< begin without end or vice versa.
  double p50_us = 0.0;
  double p90_us = 0.0;
  double p99_us = 0.0;
  double max_us = 0.0;
};

struct TraceSummary {
  std::uint64_t events = 0;  ///< Non-metadata events.
  std::uint64_t recorded = 0;
  std::uint64_t dropped = 0;
  double ts_min_us = 0.0;
  double ts_max_us = 0.0;
  std::vector<EventTypeStats> types;    ///< Sorted by total duration, then count.
  std::vector<AsyncChainStats> chains;  ///< One entry per async (cat, name).
};

[[nodiscard]] TraceSummary summarize_trace(const ParsedTrace& trace);

/// Human-readable report of a summary (the body of `rocctrace`).
void print_trace_summary(std::ostream& os, const TraceSummary& summary, std::size_t top_n = 20);

}  // namespace paradyn::obs
