// Causal critical-path reduction of sample-lifecycle chains.
//
// Every sampled value travels app -> pipe -> daemon -> network ->
// main_paradyn.  The rocc hooks mark each hop boundary on the sample's
// async "lifecycle" chain ("enq"/"deq"/"collect"/"fwd"/"net" progress
// marks between the begin and end events), so a completed chain reduces to
// five per-hop elapsed times, each split into queueing and service where
// the marker carries the drawn service time.  This header holds the pure
// reduction pieces — hop naming, per-chain reduction, the bounded top-N
// slowest-chain heap, and the folded flamegraph accumulator — all O(1) or
// O(top-N) memory so the streaming profiler (profile.hpp) never retains
// the trace.
#pragma once

#include <cstdint>
#include <map>
#include <tuple>
#include <vector>

namespace paradyn::obs {

/// The five hops of the sample lifecycle, in causal order.
enum class Hop : int { App = 0, Pipe = 1, Daemon = 2, Network = 3, Main = 4 };
inline constexpr int kHopCount = 5;

/// Short stable name used in reports, folded stacks, and JSON ("app",
/// "pipe", "daemon", "network", "main").
[[nodiscard]] const char* hop_name(int hop) noexcept;

/// Raw hop-boundary marks gathered while a chain is open.  -1 = not seen
/// (marker dropped by the ring, or the stage never ran).
struct ChainTimes {
  double gen_ts = -1.0;      ///< async begin: counters read in the app.
  double enq_ts = -1.0;      ///< "enq": deposited into the pipe.
  double deq_ts = -1.0;      ///< "deq": drained by the daemon.
  double collect_ts = -1.0;  ///< "collect": collect CPU done (arg = service us).
  double fwd_ts = -1.0;      ///< "fwd": left the daemon stage (min across tree hops).
  double net_ts = -1.0;      ///< "net": cleared the network (max across tree hops).
  double collect_svc_us = 0.0;
  double net_svc_us = 0.0;  ///< Summed batch occupancies across tree hops.
  std::int32_t origin_track = 0;  ///< Track of the async begin (the app process).
  bool have_begin = false;
};

/// One completed chain reduced to per-hop elapsed / queueing / service.
/// Missing boundaries carry forward (that hop contributes 0); out-of-order
/// boundaries are clamped to non-negative durations and flagged.
struct ChainRecord {
  std::uint64_t id = 0;
  std::int64_t pid = 0;
  std::int32_t origin_track = 0;
  double start_ts_us = 0.0;
  double end_ts_us = 0.0;
  double latency_us = 0.0;
  double hop_us[kHopCount] = {};
  double hop_queue_us[kHopCount] = {};
  double hop_service_us[kHopCount] = {};
  int dominant_hop = 0;  ///< argmax hop_us; ties break to the earlier hop.
  bool out_of_order = false;
};

[[nodiscard]] ChainRecord reduce_chain(std::int64_t pid, std::uint64_t id, const ChainTimes& t,
                                       double end_ts);

/// Bounded min-heap keeping the N slowest chains seen so far (`--top-paths`).
/// Deterministic: ties in latency break on (pid, id), so identical traces
/// produce identical selections regardless of heap internals.
class TopPaths {
 public:
  explicit TopPaths(std::size_t limit) : limit_(limit) {}

  void offer(const ChainRecord& rec);

  /// Retained chains, slowest first.
  [[nodiscard]] std::vector<ChainRecord> sorted_desc() const;

  [[nodiscard]] std::size_t limit() const noexcept { return limit_; }

 private:
  /// Strict total order: by latency, then pid, then id.
  static bool slower(const ChainRecord& a, const ChainRecord& b) noexcept;

  std::size_t limit_;
  std::vector<ChainRecord> heap_;  ///< min-heap on slower()
};

/// Folded flamegraph accumulator: one stack `<origin>;<hop>` per (origin
/// process/track, hop), weighted by microseconds spent in that hop.
/// Memory is O(#tracks x kHopCount), independent of chain count.
class FoldedAccum {
 public:
  void add(const ChainRecord& rec);

  struct Line {
    std::int64_t pid = 0;
    std::int32_t track = 0;
    int hop = 0;
    double us = 0.0;
  };

  /// Aggregated lines sorted by (pid, track, hop) — a deterministic order.
  [[nodiscard]] std::vector<Line> lines() const;

 private:
  std::map<std::tuple<std::int64_t, std::int32_t, int>, double> stacks_;
};

}  // namespace paradyn::obs
