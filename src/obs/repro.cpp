#include "obs/repro.hpp"

#include <cstdio>
#include <ctime>
#include <ostream>

namespace paradyn::obs {

const std::string& git_describe() {
  static const std::string cached = [] {
    std::string out = "unknown";
#if defined(__unix__) || defined(__APPLE__)
    if (FILE* pipe = ::popen("git describe --always --dirty 2>/dev/null", "r")) {
      char buf[128];
      if (std::fgets(buf, sizeof(buf), pipe) != nullptr) {
        std::string line(buf);
        while (!line.empty() && (line.back() == '\n' || line.back() == '\r')) line.pop_back();
        if (!line.empty()) out = line;
      }
      ::pclose(pipe);
    }
#endif
    return out;
  }();
  return cached;
}

void ReproStamp::write(std::ostream& os, const char* prefix) const {
  os << prefix << "tool: " << tool << '\n';
  if (!config.empty()) os << prefix << "config: " << config << '\n';
  if (has_seed) os << prefix << "seed: " << seed << '\n';
  if (jobs != 0) os << prefix << "jobs: " << jobs << '\n';
  if (!extra.empty()) os << prefix << "extra: " << extra << '\n';
  os << prefix << "git: " << git_describe() << '\n';

  std::time_t now = std::time(nullptr);
  std::tm tm_utc{};
#if defined(_WIN32)
  gmtime_s(&tm_utc, &now);
#else
  gmtime_r(&now, &tm_utc);
#endif
  char ts[32];
  std::strftime(ts, sizeof(ts), "%Y-%m-%dT%H:%M:%SZ", &tm_utc);
  os << prefix << "generated: " << ts << '\n';
}

}  // namespace paradyn::obs
