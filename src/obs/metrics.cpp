#include "obs/metrics.hpp"

#include <cmath>
#include <cstdio>
#include <ostream>
#include <utility>

namespace paradyn::obs {

namespace {

// Log-linear bucket index: [0, 1) is 16 linear sub-buckets; each
// [2^(e-1), 2^e) range (e >= 1) is 16 linear sub-buckets of width 2^(e-1)/16.
int bucket_index(double v) noexcept {
  if (v < 1.0) {
    int sub = static_cast<int>(v * Histogram::kSubBuckets);
    if (sub >= Histogram::kSubBuckets) sub = Histogram::kSubBuckets - 1;
    return sub;
  }
  int exp = 0;
  const double m = std::frexp(v, &exp);  // v = m * 2^exp, m in [0.5, 1)
  if (exp >= Histogram::kExpBuckets) return Histogram::kBuckets - 1;
  int sub = static_cast<int>((m * 2.0 - 1.0) * Histogram::kSubBuckets);
  if (sub >= Histogram::kSubBuckets) sub = Histogram::kSubBuckets - 1;
  if (sub < 0) sub = 0;
  return exp * Histogram::kSubBuckets + sub;
}

}  // namespace

void Histogram::observe(double v) noexcept {
  if (!(v >= 0.0) || !std::isfinite(v)) v = 0.0;  // clamp NaN/negatives
  if (count_ == 0 || v < min_) min_ = v;
  if (count_ == 0 || v > max_) max_ = v;
  ++count_;
  sum_ += v;
  ++buckets_[bucket_index(v)];
}

double Histogram::percentile(double p) const noexcept {
  if (count_ == 0) return 0.0;
  if (p <= 0.0) return min_;
  if (p >= 1.0) return max_;
  const auto target = static_cast<std::uint64_t>(p * static_cast<double>(count_ - 1)) + 1;
  std::uint64_t seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    seen += buckets_[i];
    if (seen >= target) {
      // Midpoint of the sub-bucket's value range, clamped to min/max.
      double lo = 0.0;
      double width = 1.0 / kSubBuckets;
      if (i >= kSubBuckets) {
        const int exp = i / kSubBuckets;
        const int sub = i % kSubBuckets;
        const double base = std::ldexp(1.0, exp - 1);
        width = base / kSubBuckets;
        lo = base + sub * width;
      } else {
        lo = i * width;
      }
      double mid = lo + width * 0.5;
      if (mid < min_) mid = min_;
      if (mid > max_) mid = max_;
      return mid;
    }
  }
  return max_;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(name, std::make_unique<Counter>()).first;
    Counter* c = it->second.get();
    column_readers_.push_back({name, [c] { return static_cast<double>(c->value()); }});
    columns_.push_back(name);
  }
  return *it->second;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(name, std::make_unique<Gauge>()).first;
    Gauge* g = it->second.get();
    column_readers_.push_back({name, [g] { return g->value(); }});
    columns_.push_back(name);
  }
  return *it->second;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(name, std::make_unique<Histogram>()).first;
    histogram_order_.emplace_back(name, it->second.get());
  }
  return *it->second;
}

void MetricsRegistry::add_probe(std::string name, std::function<double()> probe) {
  column_readers_.push_back({name, std::move(probe)});
  columns_.push_back(std::move(name));
}

void MetricsRegistry::sample(double t_us) {
  std::vector<double> row;
  row.reserve(column_readers_.size());
  for (const auto& col : column_readers_) row.push_back(col.read());
  row_times_.push_back(t_us);
  rows_.push_back(std::move(row));
}

void MetricsRegistry::write_csv(std::ostream& os) const {
  char buf[512];
  for (const auto& [name, h] : histogram_order_) {
    std::snprintf(buf, sizeof(buf),
                  "count=%llu mean=%.3f min=%.3f p50=%.3f p90=%.3f p99=%.3f max=%.3f",
                  static_cast<unsigned long long>(h->count()), h->mean(), h->min(),
                  h->percentile(0.50), h->percentile(0.90), h->percentile(0.99), h->max());
    os << "# histogram " << name << ": " << buf << '\n';
  }
  os << "time_us";
  for (const auto& name : columns_) os << ',' << name;
  os << '\n';
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    std::snprintf(buf, sizeof(buf), "%.3f", row_times_[i]);
    os << buf;
    for (const double v : rows_[i]) {
      std::snprintf(buf, sizeof(buf), "%.6g", v);
      os << ',' << buf;
    }
    os << '\n';
  }
}

}  // namespace paradyn::obs
