#include "obs/progress.hpp"

#include <chrono>
#include <cstdio>
#include <ostream>

namespace paradyn::obs {

namespace {

double wall_sec() {
  return std::chrono::duration<double>(std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// "1234567" -> "1.23M" style human scaling.
void format_rate(char* buf, std::size_t n, double per_sec) {
  if (per_sec >= 1e6) {
    std::snprintf(buf, n, "%.2fM", per_sec / 1e6);
  } else if (per_sec >= 1e3) {
    std::snprintf(buf, n, "%.1fk", per_sec / 1e3);
  } else {
    std::snprintf(buf, n, "%.0f", per_sec);
  }
}

}  // namespace

ProgressMeter::ProgressMeter(std::ostream& os, std::string label, std::size_t total_runs,
                             double min_interval_sec)
    : os_(os),
      label_(std::move(label)),
      total_(total_runs),
      min_interval_sec_(min_interval_sec),
      start_sec_(wall_sec()),
      last_print_sec_(start_sec_) {}

void ProgressMeter::run_completed(std::uint64_t events) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++completed_;
  events_ += events;
  const double now = wall_sec();
  if (completed_ >= total_ || now - last_print_sec_ >= min_interval_sec_) {
    last_print_sec_ = now;
    print_line(false);
    if (completed_ >= total_) printed_final_ = true;
  }
}

void ProgressMeter::finish() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (finished_) return;
  finished_ = true;
  if (!printed_final_) print_line(true);
}

void ProgressMeter::print_line(bool final_line) {
  const double elapsed = wall_sec() - start_sec_;
  const double pct = total_ > 0 ? 100.0 * static_cast<double>(completed_) /
                                      static_cast<double>(total_)
                                : 100.0;
  char rate[32];
  format_rate(rate, sizeof(rate),
              elapsed > 0.0 ? static_cast<double>(events_) / elapsed : 0.0);
  char line[192];
  if (final_line || completed_ >= total_) {
    std::snprintf(line, sizeof(line), "[%s] %zu/%zu runs (100%%) | %s ev/s | wall %.2fs\n",
                  label_.c_str(), completed_, total_, rate, elapsed);
  } else {
    const double eta = completed_ > 0
                           ? elapsed * static_cast<double>(total_ - completed_) /
                                 static_cast<double>(completed_)
                           : 0.0;
    std::snprintf(line, sizeof(line),
                  "[%s] %zu/%zu runs (%.0f%%) | %s ev/s | elapsed %.1fs | eta %.1fs\n",
                  label_.c_str(), completed_, total_, pct, rate, elapsed, eta);
  }
  os_ << line;
  os_.flush();
}

}  // namespace paradyn::obs
