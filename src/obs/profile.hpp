// Streaming critical-path profiler and W3-style bottleneck attribution.
//
// Consumes a Chrome trace incrementally — either ParsedEvents from
// trace_read::stream_chrome_trace or native TraceEvents straight out of a
// TraceRecorder (the `roccsim --profile` inline path) — and reduces it to:
//
//   * per-hop latency decomposition of the sample lifecycle (app -> pipe
//     -> daemon -> network -> main), queueing vs service per hop, backed
//     by the shared log-linear Histogram;
//   * per-resource utilization timelines with busy-interval merging
//     (gap-coalesced, with an adaptive coalescing floor so interval count
//     stays bounded on pathological traces);
//   * the causal critical path per sampled-value chain: dominant hop,
//     bounded top-N slowest chains, folded flamegraph stacks;
//   * a W3-style hypothesis pass (ExcessiveCPU, ExcessivePipeBackpressure,
//     ExcessiveNetworkDelay, StarvedDaemon) over fixed simulated-time
//     windows, reporting the interval where each hypothesis first held —
//     Paradyn's Performance Consultant turned on our own telemetry.
//
// Memory is O(open chains + windows + tracks), never O(trace): events are
// folded into accumulators as they stream past.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "obs/critical_path.hpp"
#include "obs/metrics.hpp"
#include "obs/trace_read.hpp"

namespace paradyn::obs {

struct TraceEvent;
class TraceRecorder;

struct ProfileOptions {
  /// Width of the W3 evaluation windows (simulated microseconds).
  double window_us = 100'000.0;
  /// Slowest chains retained for the report (`--top-paths N`).
  std::size_t top_paths = 5;
  /// Busy intervals closer than this merge (absorbs the 1ns JSON rounding).
  double coalesce_gap_us = 0.002;
  /// Open-chain map cap: chains beyond this are counted unmatched instead
  /// of growing memory without bound on truncated traces.
  std::size_t max_open_chains = 1u << 20;
  /// Per-resource merged-interval cap; exceeding it doubles the coalescing
  /// gap and re-merges, keeping memory bounded on any input.
  std::size_t max_intervals_per_resource = 1u << 16;

  // --- W3 hypothesis thresholds ---
  /// A hop holds Excessive* when its share of all hop time in the window
  /// exceeds this...
  double hop_share_threshold = 0.4;
  /// ...and its mean per-chain wait exceeds this floor (filters noise in
  /// near-idle windows).
  double hop_wait_min_us = 500.0;
  /// ExcessiveCPU: a CPU track's busy fraction in the window exceeds this.
  double cpu_busy_threshold = 0.9;
};

/// One hop row of the decomposition.
struct HopStats {
  std::uint64_t count = 0;  ///< Chains contributing to this hop.
  double queue_total_us = 0.0;
  double service_total_us = 0.0;
  Histogram queue_us;
  Histogram service_us;
};

/// One (pid, track) resource's utilization timeline.
struct ResourceStats {
  std::int64_t pid = 0;
  std::int32_t track = 0;
  std::string label;  ///< Thread-name metadata, or "p<pid>.t<track>".
  std::uint64_t spans = 0;
  double busy_us = 0.0;          ///< Sum of merged busy intervals.
  std::uint64_t intervals = 0;   ///< Merged busy intervals.
  double max_interval_us = 0.0;  ///< Longest merged busy interval.
  double util_fraction = 0.0;    ///< busy / trace span.
};

/// One W3 hypothesis verdict.
struct HypothesisFinding {
  std::string name;    ///< e.g. "ExcessivePipeBackpressure".
  std::string target;  ///< The where-axis: hop or resource label.
  int hop = -1;        ///< Hop index the hypothesis attributes to, -1 if n/a.
  bool held = false;
  double first_held_start_us = 0.0;  ///< First contiguous held interval.
  double first_held_end_us = 0.0;
  double peak = 0.0;  ///< Max tested metric over held windows.
  std::uint64_t windows_held = 0;
};

struct ProfileReport {
  std::uint64_t events = 0;  ///< Non-metadata events consumed.
  std::uint64_t recorded = 0;
  std::uint64_t dropped = 0;
  std::uint64_t chains_complete = 0;
  std::uint64_t chains_unmatched = 0;  ///< begin-less ends + end-less begins.
  std::uint64_t chains_out_of_order = 0;
  double ts_min_us = 0.0;
  double ts_max_us = 0.0;
  double window_us = 0.0;
  HopStats hops[kHopCount];
  int dominant_hop = 0;  ///< argmax of total hop time; -1 when no chains.
  std::vector<ResourceStats> resources;  ///< Sorted by (pid, track).
  std::vector<ChainRecord> top_chains;   ///< Slowest first.
  std::vector<FoldedAccum::Line> folded;
  std::vector<HypothesisFinding> hypotheses;  ///< Fixed order of the four.

  /// Resolve a (pid, track) to its human label.
  [[nodiscard]] std::string track_label(std::int64_t pid, std::int32_t track) const;
  std::map<std::pair<std::int64_t, std::int32_t>, std::string> labels;
};

/// The streaming analyzer.  Feed events in file order, then finalize once.
class Profiler {
 public:
  explicit Profiler(ProfileOptions options = {});

  /// Stream sink for parsed JSON events (metadata included).
  void feed(const ParsedEvent& ev);
  /// Native sink for in-process recorder shards (no JSON round-trip).
  void feed(const TraceEvent& ev, std::int32_t pid);

  /// Label a (pid, track) resource (JSON feeds pick labels up from "M"
  /// thread_name metadata automatically; the native path sets them from
  /// TraceRecorder::track_labels()).
  void set_track_label(std::int64_t pid, std::int32_t track, std::string label);
  /// Recorder totals for the report header (otherData block equivalents).
  void set_totals(std::uint64_t recorded, std::uint64_t dropped);

  /// Close open chains, merge timelines, run the hypothesis pass.
  [[nodiscard]] ProfileReport finalize();

 private:
  struct ResourceAccum {
    std::uint64_t spans = 0;
    double coalesce_gap_us = 0.0;             ///< Doubles when intervals overflow.
    std::map<double, double> intervals;       ///< start -> end, disjoint.
  };
  struct Window {
    double hop_queue_us[kHopCount] = {};
    double hop_service_us[kHopCount] = {};
    std::uint64_t hop_count[kHopCount] = {};
    std::uint64_t enq = 0;        ///< Lifecycle "enq" marks in the window.
    std::uint64_t deq = 0;        ///< Lifecycle "deq" marks in the window.
    std::uint64_t pipe_full = 0;  ///< pipe/"full" instants in the window.
    std::uint64_t chains = 0;     ///< Chains completing in the window.
  };

  void observe_span(std::int64_t pid, std::int32_t track, const char* cat, double ts, double dur);
  void chain_begin(std::int64_t pid, std::uint64_t id, std::int32_t track, double ts);
  void chain_mark(std::int64_t pid, std::uint64_t id, const char* mark, double ts, double arg);
  void chain_end(std::int64_t pid, std::uint64_t id, double ts);
  void count_pipe_event(const char* name, double ts);
  void touch_ts(double ts);
  Window& window_at(double ts);

  ProfileOptions options_;
  std::uint64_t events_ = 0;
  std::uint64_t recorded_ = 0;
  std::uint64_t dropped_ = 0;
  bool have_ts_ = false;
  double ts_min_us_ = 0.0;
  double ts_max_us_ = 0.0;

  std::map<std::pair<std::int64_t, std::uint64_t>, ChainTimes> open_chains_;
  std::uint64_t chains_complete_ = 0;
  std::uint64_t chains_unmatched_ = 0;
  std::uint64_t chains_out_of_order_ = 0;

  HopStats hops_[kHopCount];
  TopPaths top_paths_;
  FoldedAccum folded_;
  std::map<std::pair<std::int64_t, std::int32_t>, ResourceAccum> resources_;
  std::map<std::pair<std::int64_t, std::int32_t>, std::string> labels_;
  std::vector<Window> windows_;
  /// Per-CPU-track busy microseconds per window (ExcessiveCPU's where-axis).
  std::map<std::pair<std::int64_t, std::int32_t>, std::vector<double>> cpu_busy_;
};

/// Stream a trace file through a Profiler (the `roccprof FILE` path).
[[nodiscard]] ProfileReport profile_trace_stream(std::istream& is, ProfileOptions options = {});

/// Profile an in-process recorder (the `roccsim --profile` path).
[[nodiscard]] ProfileReport profile_recorder(const TraceRecorder& recorder,
                                             ProfileOptions options = {});

/// Human-readable report (the body of `roccprof`).  When `hypotheses_only`
/// is set only the W3 section prints.
void print_profile_report(std::ostream& os, const ProfileReport& report,
                          bool hypotheses_only = false);
/// Structured outputs: JSON document, per-hop CSV, flamegraph-folded stacks.
void write_profile_json(std::ostream& os, const ProfileReport& report);
void write_profile_csv(std::ostream& os, const ProfileReport& report);
void write_profile_folded(std::ostream& os, const ProfileReport& report);

}  // namespace paradyn::obs
