#include "obs/critical_path.hpp"

#include <algorithm>

namespace paradyn::obs {

const char* hop_name(int hop) noexcept {
  switch (static_cast<Hop>(hop)) {
    case Hop::App:
      return "app";
    case Hop::Pipe:
      return "pipe";
    case Hop::Daemon:
      return "daemon";
    case Hop::Network:
      return "network";
    case Hop::Main:
      return "main";
  }
  return "?";
}

ChainRecord reduce_chain(std::int64_t pid, std::uint64_t id, const ChainTimes& t,
                         double end_ts) {
  ChainRecord rec;
  rec.id = id;
  rec.pid = pid;
  rec.origin_track = t.origin_track;

  // Boundary sequence gen -> enq -> deq -> fwd -> net -> end.  A missing
  // boundary carries the previous one forward (its hop contributes 0); a
  // boundary earlier than its predecessor is clamped (negative durations
  // would poison the histograms) and flagged.
  const double raw[6] = {t.gen_ts, t.enq_ts, t.deq_ts, t.fwd_ts, t.net_ts, end_ts};
  double bounds[6];
  double prev = raw[0] >= 0.0 ? raw[0] : end_ts;
  for (int i = 0; i < 6; ++i) {
    double b = raw[i];
    if (b < 0.0) b = prev;  // marker missing: hop collapses to zero width
    if (b < prev) {
      b = prev;
      rec.out_of_order = true;
    }
    bounds[i] = b;
    prev = b;
  }
  rec.start_ts_us = bounds[0];
  rec.end_ts_us = bounds[5];
  rec.latency_us = bounds[5] - bounds[0];

  for (int h = 0; h < kHopCount; ++h) {
    rec.hop_us[h] = bounds[h + 1] - bounds[h];
  }
  // The ROCC app deposits synchronously at generation time, so the entire
  // gen -> enq gap is the producer blocked on a full pipe.  Charge it to
  // the pipe hop: backpressure belongs to the pipe, not the app.  The app
  // hop stays in the decomposition for traces whose producers do real work
  // before depositing.
  rec.hop_us[static_cast<int>(Hop::Pipe)] += rec.hop_us[static_cast<int>(Hop::App)];
  rec.hop_us[static_cast<int>(Hop::App)] = 0.0;
  // Queueing vs service: the daemon hop's service is the collect CPU the
  // marker carried; the network hop's is the summed batch occupancies.
  // The app/pipe/main hops are pure waiting by construction (the pipe-full
  // block, the pipe residence, the delivery handoff).
  for (int h = 0; h < kHopCount; ++h) {
    double svc = 0.0;
    if (h == static_cast<int>(Hop::Daemon)) svc = t.collect_svc_us;
    if (h == static_cast<int>(Hop::Network)) svc = t.net_svc_us;
    svc = std::clamp(svc, 0.0, rec.hop_us[h]);
    rec.hop_service_us[h] = svc;
    rec.hop_queue_us[h] = rec.hop_us[h] - svc;
  }

  rec.dominant_hop = 0;
  for (int h = 1; h < kHopCount; ++h) {
    if (rec.hop_us[h] > rec.hop_us[rec.dominant_hop]) rec.dominant_hop = h;
  }
  return rec;
}

bool TopPaths::slower(const ChainRecord& a, const ChainRecord& b) noexcept {
  if (a.latency_us != b.latency_us) return a.latency_us > b.latency_us;
  if (a.pid != b.pid) return a.pid > b.pid;
  return a.id > b.id;
}

void TopPaths::offer(const ChainRecord& rec) {
  if (limit_ == 0) return;
  const auto min_at_top = [](const ChainRecord& a, const ChainRecord& b) {
    return slower(a, b);  // std::*_heap with this puts the smallest on top
  };
  if (heap_.size() < limit_) {
    heap_.push_back(rec);
    std::push_heap(heap_.begin(), heap_.end(), min_at_top);
    return;
  }
  if (!slower(rec, heap_.front())) return;  // not slower than the current floor
  std::pop_heap(heap_.begin(), heap_.end(), min_at_top);
  heap_.back() = rec;
  std::push_heap(heap_.begin(), heap_.end(), min_at_top);
}

std::vector<ChainRecord> TopPaths::sorted_desc() const {
  std::vector<ChainRecord> out = heap_;
  std::sort(out.begin(), out.end(), slower);
  return out;
}

void FoldedAccum::add(const ChainRecord& rec) {
  for (int h = 0; h < kHopCount; ++h) {
    if (rec.hop_us[h] <= 0.0) continue;
    stacks_[{rec.pid, rec.origin_track, h}] += rec.hop_us[h];
  }
}

std::vector<FoldedAccum::Line> FoldedAccum::lines() const {
  std::vector<Line> out;
  out.reserve(stacks_.size());
  for (const auto& [key, us] : stacks_) {
    out.push_back({std::get<0>(key), std::get<1>(key), std::get<2>(key), us});
  }
  return out;  // std::map iteration is already (pid, track, hop) sorted
}

}  // namespace paradyn::obs
