#include "obs/trace_read.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <unordered_map>

#include "obs/metrics.hpp"

namespace paradyn::obs {

namespace {

/// Pull-style scanner over an incrementally refilled window of the input
/// stream.  Memory is bounded by one refill chunk regardless of document
/// size, which is what lets the profiler stream gigabyte traces.
class JsonScanner {
 public:
  explicit JsonScanner(std::istream& is) : is_(is) {}

  void skip_ws() {
    while (have(1) && (buf_[pos_] == ' ' || buf_[pos_] == '\t' || buf_[pos_] == '\n' ||
                       buf_[pos_] == '\r')) {
      ++pos_;
    }
  }

  [[nodiscard]] char peek() {
    skip_ws();
    if (!have(1)) fail("unexpected end of input");
    return buf_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  [[nodiscard]] bool consume_if(char c) {
    skip_ws();
    if (have(1) && buf_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  void parse_string(std::string& out) {
    expect('"');
    out.clear();
    while (true) {
      if (!have(1)) fail("unterminated string");
      const char c = buf_[pos_++];
      if (c == '"') return;
      if (c == '\\') {
        if (!have(1)) fail("unterminated escape");
        const char e = buf_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (!have(4)) fail("truncated \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = buf_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else fail("bad \\u escape");
            }
            // Trace names are ASCII; encode BMP code points as UTF-8.
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default:
            fail("unknown escape");
        }
      } else {
        out += c;
      }
    }
  }

  [[nodiscard]] std::string parse_string() {
    std::string out;
    parse_string(out);
    return out;
  }

  [[nodiscard]] double parse_number() {
    skip_ws();
    // Guarantee the full literal is in the window: any valid JSON number
    // is far shorter than this lookahead, and buf_ is NUL-terminated so
    // strtod stops at the window edge at EOF.
    (void)have(64);
    const char* start = buf_.c_str() + pos_;
    char* end = nullptr;
    const double v = std::strtod(start, &end);
    if (end == start) fail("expected a number");
    pos_ += static_cast<std::size_t>(end - start);
    return v;
  }

  /// Skip any JSON value (used for fields we do not care about).
  void skip_value() {
    const char c = peek();
    if (c == '"') {
      parse_string(scratch_);
    } else if (c == '{') {
      ++pos_;
      if (consume_if('}')) return;
      do {
        parse_string(scratch_);
        expect(':');
        skip_value();
      } while (consume_if(','));
      expect('}');
    } else if (c == '[') {
      ++pos_;
      if (consume_if(']')) return;
      do {
        skip_value();
      } while (consume_if(','));
      expect(']');
    } else if (c == 't' || c == 'f' || c == 'n') {
      while (have(1) && std::isalpha(static_cast<unsigned char>(buf_[pos_]))) ++pos_;
    } else {
      (void)parse_number();
    }
  }

  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("trace JSON parse error at byte " +
                             std::to_string(consumed_ + pos_) + ": " + what);
  }

 private:
  /// True when at least `n` bytes are readable at pos_; refills lazily.
  [[nodiscard]] bool have(std::size_t n) {
    if (pos_ + n <= buf_.size()) return true;
    if (eof_) return false;
    if (pos_ > 0) {  // compact the consumed prefix before reading more
      consumed_ += pos_;
      buf_.erase(0, pos_);
      pos_ = 0;
    }
    while (buf_.size() < n && !eof_) {
      char chunk[kChunk];
      is_.read(chunk, sizeof(chunk));
      const auto got = static_cast<std::size_t>(is_.gcount());
      if (got == 0) {
        eof_ = true;
        break;
      }
      buf_.append(chunk, got);
    }
    return pos_ + n <= buf_.size();
  }

  static constexpr std::size_t kChunk = 1 << 16;

  std::istream& is_;
  std::string buf_;
  std::string scratch_;
  std::size_t pos_ = 0;
  std::size_t consumed_ = 0;
  bool eof_ = false;
};

void parse_args_object(JsonScanner& s, ParsedEvent& ev) {
  s.expect('{');
  if (s.consume_if('}')) return;
  do {
    const std::string key = s.parse_string();
    s.expect(':');
    const char c = s.peek();
    if (c == '"') {
      ev.str_args[key] = s.parse_string();
    } else if (c == '{' || c == '[' || c == 't' || c == 'f' || c == 'n') {
      s.skip_value();
    } else {
      ev.num_args[key] = s.parse_number();
    }
  } while (s.consume_if(','));
  s.expect('}');
}

void parse_event_object(JsonScanner& s, ParsedEvent& ev) {
  ev.name.clear();
  ev.cat.clear();
  ev.ph.clear();
  ev.ts = 0.0;
  ev.dur = 0.0;
  ev.pid = 0;
  ev.tid = 0;
  ev.id.clear();
  ev.num_args.clear();
  ev.str_args.clear();
  s.expect('{');
  if (s.consume_if('}')) return;
  do {
    const std::string key = s.parse_string();
    s.expect(':');
    if (key == "name") s.parse_string(ev.name);
    else if (key == "cat") s.parse_string(ev.cat);
    else if (key == "ph") s.parse_string(ev.ph);
    else if (key == "ts") ev.ts = s.parse_number();
    else if (key == "dur") ev.dur = s.parse_number();
    else if (key == "pid") ev.pid = static_cast<std::int64_t>(s.parse_number());
    else if (key == "tid") ev.tid = static_cast<std::int64_t>(s.parse_number());
    else if (key == "id") ev.id = s.peek() == '"' ? s.parse_string() : std::to_string(s.parse_number());
    else if (key == "args") parse_args_object(s, ev);
    else s.skip_value();
  } while (s.consume_if(','));
  s.expect('}');
}

}  // namespace

TraceStreamInfo stream_chrome_trace(std::istream& is,
                                    const std::function<void(const ParsedEvent&)>& sink) {
  JsonScanner s(is);
  TraceStreamInfo info;
  ParsedEvent ev;  // reused across events so steady-state allocations are ~0

  const auto parse_event_array = [&] {
    s.expect('[');
    if (!s.consume_if(']')) {
      do {
        parse_event_object(s, ev);
        ++info.events;
        sink(ev);
      } while (s.consume_if(','));
      s.expect(']');
    }
  };

  // Either {"traceEvents": [...], ...} or a bare top-level event array.
  if (s.peek() == '[') {
    parse_event_array();
    return info;
  }

  s.expect('{');
  if (s.consume_if('}')) return info;
  do {
    const std::string key = s.parse_string();
    s.expect(':');
    if (key == "traceEvents") {
      parse_event_array();
    } else if (key == "otherData") {
      ParsedEvent other;
      parse_args_object(s, other);
      if (const auto it = other.num_args.find("recorded"); it != other.num_args.end()) {
        info.recorded = static_cast<std::uint64_t>(it->second);
      }
      if (const auto it = other.num_args.find("dropped"); it != other.num_args.end()) {
        info.dropped = static_cast<std::uint64_t>(it->second);
      }
    } else {
      s.skip_value();
    }
  } while (s.consume_if(','));
  s.expect('}');
  return info;
}

ParsedTrace read_chrome_trace(std::istream& is) {
  ParsedTrace trace;
  const TraceStreamInfo info =
      stream_chrome_trace(is, [&](const ParsedEvent& ev) { trace.events.push_back(ev); });
  trace.recorded = info.recorded;
  trace.dropped = info.dropped;
  return trace;
}

TraceSummary summarize_trace(const ParsedTrace& trace) {
  TraceSummary out;
  out.recorded = trace.recorded;
  out.dropped = trace.dropped;

  std::unordered_map<std::string, EventTypeStats> types;
  // (cat \x1f name \x1f pid \x1f id) -> begin timestamp.
  std::unordered_map<std::string, double> open_chains;
  struct ChainAccum {
    std::string cat, name;
    Histogram durations;  // shared log-linear histogram, O(1) per chain type
    std::uint64_t unmatched = 0;
  };
  std::unordered_map<std::string, ChainAccum> chains;

  bool first_ts = true;
  for (const auto& ev : trace.events) {
    if (ev.ph == "M") continue;  // metadata
    ++out.events;
    if (first_ts || ev.ts < out.ts_min_us) out.ts_min_us = ev.ts;
    const double end_ts = ev.ts + (ev.ph == "X" ? ev.dur : 0.0);
    if (first_ts || end_ts > out.ts_max_us) out.ts_max_us = end_ts;
    first_ts = false;

    const std::string type_key = ev.cat + '\x1f' + ev.name;
    auto& t = types[type_key];
    if (t.count == 0) {
      t.cat = ev.cat;
      t.name = ev.name;
    }
    ++t.count;
    if (ev.ph == "X") {
      t.total_dur_us += ev.dur;
      t.max_dur_us = std::max(t.max_dur_us, ev.dur);
    }

    if (ev.ph == "b" || ev.ph == "e") {
      auto& chain = chains[type_key];
      if (chain.cat.empty()) {
        chain.cat = ev.cat;
        chain.name = ev.name;
      }
      const std::string chain_key =
          type_key + '\x1f' + std::to_string(ev.pid) + '\x1f' + ev.id;
      if (ev.ph == "b") {
        if (!open_chains.emplace(chain_key, ev.ts).second) ++chain.unmatched;
      } else {
        const auto it = open_chains.find(chain_key);
        if (it == open_chains.end()) {
          ++chain.unmatched;
        } else {
          chain.durations.observe(ev.ts - it->second);
          open_chains.erase(it);
        }
      }
    }
  }

  for (auto& [key, t] : types) out.types.push_back(std::move(t));
  std::sort(out.types.begin(), out.types.end(), [](const auto& a, const auto& b) {
    if (a.total_dur_us != b.total_dur_us) return a.total_dur_us > b.total_dur_us;
    if (a.count != b.count) return a.count > b.count;
    return a.name < b.name;
  });

  for (auto& [key, chain] : chains) {
    AsyncChainStats cs;
    cs.cat = chain.cat;
    cs.name = chain.name;
    cs.complete_chains = chain.durations.count();
    cs.unmatched = chain.unmatched;
    if (chain.durations.count() > 0) {
      cs.p50_us = chain.durations.percentile(0.50);
      cs.p90_us = chain.durations.percentile(0.90);
      cs.p99_us = chain.durations.percentile(0.99);
      cs.max_us = chain.durations.max();
    }
    out.chains.push_back(std::move(cs));
  }
  // Count begins that never saw an end.
  for (const auto& [key, ts] : open_chains) {
    const auto sep = key.find('\x1f', key.find('\x1f') + 1);
    const std::string type_key = key.substr(0, sep);
    if (const auto it = chains.find(type_key); it != chains.end()) {
      for (auto& cs : out.chains) {
        if (cs.cat == it->second.cat && cs.name == it->second.name) {
          ++cs.unmatched;
          break;
        }
      }
    }
  }
  std::sort(out.chains.begin(), out.chains.end(),
            [](const auto& a, const auto& b) { return a.complete_chains > b.complete_chains; });
  return out;
}

void print_trace_summary(std::ostream& os, const TraceSummary& summary, std::size_t top_n) {
  char line[256];
  std::snprintf(line, sizeof(line),
                "events: %llu  (recorder saw %llu, dropped %llu)\nspan: %.3f ms .. %.3f ms "
                "(%.3f ms)\n\n",
                static_cast<unsigned long long>(summary.events),
                static_cast<unsigned long long>(summary.recorded),
                static_cast<unsigned long long>(summary.dropped), summary.ts_min_us / 1e3,
                summary.ts_max_us / 1e3, (summary.ts_max_us - summary.ts_min_us) / 1e3);
  os << line;

  os << "top event types (by total span time, then count):\n";
  std::snprintf(line, sizeof(line), "  %-12s %-24s %10s %14s %12s %12s\n", "category", "name",
                "count", "total_ms", "mean_us", "max_us");
  os << line;
  std::size_t shown = 0;
  for (const auto& t : summary.types) {
    if (shown++ >= top_n) break;
    const double mean = t.count > 0 ? t.total_dur_us / static_cast<double>(t.count) : 0.0;
    std::snprintf(line, sizeof(line), "  %-12s %-24s %10llu %14.3f %12.2f %12.2f\n",
                  t.cat.c_str(), t.name.c_str(), static_cast<unsigned long long>(t.count),
                  t.total_dur_us / 1e3, mean, t.max_dur_us);
    os << line;
  }
  if (summary.types.size() > top_n) {
    os << "  ... " << (summary.types.size() - top_n) << " more type(s)\n";
  }

  if (!summary.chains.empty()) {
    os << "\nasync chains (e.g. sample lifecycle, generation -> delivery):\n";
    std::snprintf(line, sizeof(line), "  %-12s %-16s %10s %10s %10s %10s %10s %10s\n", "category",
                  "name", "complete", "unmatched", "p50_us", "p90_us", "p99_us", "max_us");
    os << line;
    for (const auto& c : summary.chains) {
      std::snprintf(line, sizeof(line),
                    "  %-12s %-16s %10llu %10llu %10.1f %10.1f %10.1f %10.1f\n", c.cat.c_str(),
                    c.name.c_str(), static_cast<unsigned long long>(c.complete_chains),
                    static_cast<unsigned long long>(c.unmatched), c.p50_us, c.p90_us, c.p99_us,
                    c.max_us);
      os << line;
    }
  }
}

}  // namespace paradyn::obs
