// Heartbeat/progress reporting for long parallel runs.
//
// ParallelRunner calls run_completed() from its worker threads as each
// simulation finishes; the meter throttles output so a sweep of hundreds of
// runs prints a handful of lines, each with runs done/total, aggregate
// simulation events/sec, elapsed wall time, and an ETA.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>

namespace paradyn::obs {

class ProgressMeter {
 public:
  /// Writes heartbeat lines to `os` (not owned; must outlive the meter).
  /// At most one line per `min_interval_sec` plus a final line at finish().
  ProgressMeter(std::ostream& os, std::string label, std::size_t total_runs,
                double min_interval_sec = 0.5);

  ProgressMeter(const ProgressMeter&) = delete;
  ProgressMeter& operator=(const ProgressMeter&) = delete;

  /// One run finished, having executed `events` simulation events.
  /// Thread-safe.
  void run_completed(std::uint64_t events);

  /// Print the final line (idempotent).
  void finish();

  [[nodiscard]] std::size_t completed() const noexcept { return completed_; }
  [[nodiscard]] std::uint64_t events() const noexcept { return events_; }

 private:
  void print_line(bool final_line);

  std::ostream& os_;
  std::string label_;
  std::size_t total_;
  double min_interval_sec_;
  std::mutex mutex_;
  std::size_t completed_ = 0;
  std::uint64_t events_ = 0;
  double start_sec_ = 0.0;
  double last_print_sec_ = 0.0;
  bool printed_final_ = false;
  bool finished_ = false;
};

}  // namespace paradyn::obs
