#include "obs/trace.hpp"

#include <cmath>
#include <cstdio>
#include <ostream>
#include <utility>

namespace paradyn::obs {

namespace {

/// Chrome phase letter.
const char* phase_code(Phase p) noexcept {
  switch (p) {
    case Phase::Complete:
      return "X";
    case Phase::Instant:
      return "i";
    case Phase::Counter:
      return "C";
    case Phase::AsyncBegin:
      return "b";
    case Phase::AsyncInstant:
      return "n";
    case Phase::AsyncEnd:
      return "e";
  }
  return "i";
}

void append_escaped(std::string& out, const char* s) {
  for (; *s != '\0'; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
}

void append_number(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out += '0';  // JSON has no NaN/Inf; clamp rather than corrupt the file
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  out += buf;
}

void append_event(std::string& out, const TraceEvent& e, std::int32_t pid) {
  out += R"({"name":")";
  append_escaped(out, e.name);
  out += R"(","cat":")";
  append_escaped(out, e.category);
  out += R"(","ph":")";
  out += phase_code(e.phase);
  out += R"(","ts":)";
  append_number(out, e.ts_us);
  if (e.phase == Phase::Complete) {
    out += R"(,"dur":)";
    append_number(out, e.dur_us);
  }
  char buf[48];
  std::snprintf(buf, sizeof(buf), ",\"pid\":%d,\"tid\":%d", pid, e.track);
  out += buf;
  if (e.phase == Phase::AsyncBegin || e.phase == Phase::AsyncInstant ||
      e.phase == Phase::AsyncEnd) {
    std::snprintf(buf, sizeof(buf), ",\"id\":\"0x%llx\"",
                  static_cast<unsigned long long>(e.id));
    out += buf;
  }
  if (e.phase == Phase::Instant) out += R"(,"s":"t")";
  if (e.phase == Phase::Counter) {
    // Counter value rides in args under a fixed series name.
    out += R"(,"args":{"value":)";
    append_number(out, e.arg0);
    out += "}}";
    return;
  }
  if (e.arg0_name != nullptr || e.arg1_name != nullptr) {
    out += R"(,"args":{)";
    bool first = true;
    for (const auto& [name, value] :
         {std::pair{e.arg0_name, e.arg0}, std::pair{e.arg1_name, e.arg1}}) {
      if (name == nullptr) continue;
      if (!first) out += ',';
      first = false;
      out += '"';
      append_escaped(out, name);
      out += "\":";
      append_number(out, value);
    }
    out += '}';
  }
  out += '}';
}

}  // namespace

void Tracer::set_track_name(std::int32_t track, std::string name) {
  if (recorder_ == nullptr) return;
  std::lock_guard<std::mutex> lock(recorder_->mutex_);
  recorder_->track_names_.emplace_back(std::pair{pid_, track}, std::move(name));
}

TraceRecorder::TraceRecorder(std::size_t events_per_tracer)
    : events_per_tracer_(events_per_tracer == 0 ? 1 : events_per_tracer) {}

Tracer TraceRecorder::create_tracer(std::string process_name) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto pid = static_cast<std::int32_t>(shards_.size());
  shards_.emplace_back(events_per_tracer_);
  shards_.back().pid = pid;
  process_names_.push_back(std::move(process_name));
  return Tracer(this, &shards_.back(), pid);
}

std::uint64_t TraceRecorder::recorded() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t total = 0;
  for (const auto& s : shards_) total += s.recorded;
  return total;
}

std::uint64_t TraceRecorder::dropped() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t total = 0;
  for (const auto& s : shards_) total += s.dropped;
  return total;
}

void TraceRecorder::for_each_event(
    const std::function<void(const TraceEvent& event, std::int32_t pid)>& fn) const {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& shard : shards_) {
    const std::size_t n = shard.events.size();
    const std::size_t start = (n == shard.capacity) ? shard.next : 0;
    for (std::size_t i = 0; i < n; ++i) {
      fn(shard.events[(start + i) % n], shard.pid);
    }
  }
}

std::vector<std::pair<std::pair<std::int32_t, std::int32_t>, std::string>>
TraceRecorder::track_labels() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return track_names_;
}

std::vector<std::string> TraceRecorder::process_names() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return process_names_;
}

void TraceRecorder::write_chrome_json(std::ostream& os) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string buf;
  buf.reserve(1u << 16);
  os << "{\"traceEvents\":[\n";
  bool first = true;
  const auto flush_line = [&](std::string& line) {
    if (!first) os << ",\n";
    first = false;
    os << line;
    line.clear();
  };

  // Metadata: process and thread (track) labels.
  for (std::size_t pid = 0; pid < process_names_.size(); ++pid) {
    if (process_names_[pid].empty()) continue;
    buf += R"({"name":"process_name","ph":"M","pid":)";
    buf += std::to_string(pid);
    buf += R"(,"tid":0,"args":{"name":")";
    append_escaped(buf, process_names_[pid].c_str());
    buf += "\"}}";
    flush_line(buf);
  }
  for (const auto& [key, label] : track_names_) {
    buf += R"({"name":"thread_name","ph":"M","pid":)";
    buf += std::to_string(key.first);
    buf += R"(,"tid":)";
    buf += std::to_string(key.second);
    buf += R"(,"args":{"name":")";
    append_escaped(buf, label.c_str());
    buf += "\"}}";
    flush_line(buf);
  }

  for (const auto& shard : shards_) {
    // After a wrap the oldest retained event sits at `next`; emit in
    // chronological order so viewers that do not sort still render sanely.
    const std::size_t n = shard.events.size();
    const std::size_t start = (n == shard.capacity) ? shard.next : 0;
    for (std::size_t i = 0; i < n; ++i) {
      append_event(buf, shard.events[(start + i) % n], shard.pid);
      flush_line(buf);
      if (buf.capacity() > (1u << 20)) buf.shrink_to_fit();
    }
  }
  std::uint64_t total_recorded = 0;
  std::uint64_t total_dropped = 0;
  for (const auto& s : shards_) {
    total_recorded += s.recorded;
    total_dropped += s.dropped;
  }
  os << "\n],\"displayTimeUnit\":\"ms\",\"otherData\":{\"recorded\":" << total_recorded
     << ",\"dropped\":" << total_dropped << "}}\n";
}

}  // namespace paradyn::obs
