// AIX-style trace records (substitute for the SP-2 tracing facility).
//
// The paper's workload characterization consumes kernel traces only as a
// sequence of resource-occupancy intervals attributed to processes (Section
// 2.3).  A record therefore carries: when, on which node, by which process
// (and process class), which resource (CPU or network), and for how long.
#pragma once

#include <cstdint>
#include <string_view>

namespace paradyn::trace {

/// The five process classes the paper distinguishes (Table 1).
enum class ProcessClass : std::uint8_t {
  Application,    ///< Instrumented application process (e.g. NAS pvmbt).
  ParadynDaemon,  ///< Local Paradyn daemon (Pd).
  PvmDaemon,      ///< PVM daemon (pvmd).
  Other,          ///< Other user/system processes.
  MainParadyn,    ///< The main (multithreaded) Paradyn process.
};

inline constexpr int kNumProcessClasses = 5;

/// The two resource classes of the ROCC model (Section 2.2).
enum class ResourceKind : std::uint8_t {
  Cpu,
  Network,
};

inline constexpr int kNumResourceKinds = 2;

[[nodiscard]] std::string_view to_string(ProcessClass c) noexcept;
[[nodiscard]] std::string_view to_string(ResourceKind r) noexcept;

/// Parse the strings produced by to_string; throws std::invalid_argument on
/// unknown input.
[[nodiscard]] ProcessClass process_class_from_string(std::string_view s);
[[nodiscard]] ResourceKind resource_kind_from_string(std::string_view s);

/// One resource-occupancy interval observed in a trace.
struct TraceRecord {
  double timestamp_us = 0.0;  ///< Start of the occupancy interval.
  std::int32_t node = 0;      ///< System node the process ran on.
  std::int32_t pid = 0;       ///< Process id within the trace.
  ProcessClass pclass = ProcessClass::Application;
  ResourceKind resource = ResourceKind::Cpu;
  double duration_us = 0.0;   ///< Length of the occupancy request.
};

}  // namespace paradyn::trace
