#include "trace/io.hpp"

#include <charconv>
#include <fstream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string_view>
#include <vector>

namespace paradyn::trace {
namespace {

constexpr std::string_view kHeader = "timestamp_us,node,pid,process_class,resource,duration_us";

std::vector<std::string_view> split_fields(std::string_view line) {
  std::vector<std::string_view> fields;
  std::size_t start = 0;
  while (true) {
    const std::size_t comma = line.find(',', start);
    if (comma == std::string_view::npos) {
      fields.push_back(line.substr(start));
      break;
    }
    fields.push_back(line.substr(start, comma - start));
    start = comma + 1;
  }
  return fields;
}

double parse_double(std::string_view s, int line_no) {
  double out = 0.0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), out);
  if (ec != std::errc{} || ptr != s.data() + s.size()) {
    throw std::runtime_error("trace CSV line " + std::to_string(line_no) +
                             ": bad numeric field '" + std::string(s) + "'");
  }
  return out;
}

std::int32_t parse_int(std::string_view s, int line_no) {
  std::int32_t out = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), out);
  if (ec != std::errc{} || ptr != s.data() + s.size()) {
    throw std::runtime_error("trace CSV line " + std::to_string(line_no) +
                             ": bad integer field '" + std::string(s) + "'");
  }
  return out;
}

}  // namespace

void write_csv(std::ostream& os, const std::vector<TraceRecord>& records) {
  os << kHeader << '\n';
  for (const TraceRecord& r : records) {
    os << r.timestamp_us << ',' << r.node << ',' << r.pid << ',' << to_string(r.pclass) << ','
       << to_string(r.resource) << ',' << r.duration_us << '\n';
  }
}

void write_csv_file(const std::string& path, const std::vector<TraceRecord>& records) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open trace file for writing: " + path);
  write_csv(out, records);
  out.flush();
  if (!out) throw std::runtime_error("error writing trace file: " + path);
}

std::vector<TraceRecord> read_csv(std::istream& is) {
  std::string line;
  if (!std::getline(is, line) || line != kHeader) {
    throw std::runtime_error("trace CSV: missing or wrong header");
  }
  std::vector<TraceRecord> records;
  int line_no = 1;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty()) continue;
    const auto fields = split_fields(line);
    if (fields.size() != 6) {
      throw std::runtime_error("trace CSV line " + std::to_string(line_no) +
                               ": expected 6 fields, got " + std::to_string(fields.size()));
    }
    TraceRecord r;
    r.timestamp_us = parse_double(fields[0], line_no);
    r.node = parse_int(fields[1], line_no);
    r.pid = parse_int(fields[2], line_no);
    try {
      r.pclass = process_class_from_string(fields[3]);
      r.resource = resource_kind_from_string(fields[4]);
    } catch (const std::invalid_argument& e) {
      throw std::runtime_error("trace CSV line " + std::to_string(line_no) + ": " + e.what());
    }
    r.duration_us = parse_double(fields[5], line_no);
    records.push_back(r);
  }
  return records;
}

std::vector<TraceRecord> read_csv_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open trace file for reading: " + path);
  return read_csv(in);
}

}  // namespace paradyn::trace
