#include "trace/record.hpp"

#include <stdexcept>
#include <string>

namespace paradyn::trace {

std::string_view to_string(ProcessClass c) noexcept {
  switch (c) {
    case ProcessClass::Application:
      return "application";
    case ProcessClass::ParadynDaemon:
      return "paradyn_daemon";
    case ProcessClass::PvmDaemon:
      return "pvm_daemon";
    case ProcessClass::Other:
      return "other";
    case ProcessClass::MainParadyn:
      return "main_paradyn";
  }
  return "unknown";
}

std::string_view to_string(ResourceKind r) noexcept {
  switch (r) {
    case ResourceKind::Cpu:
      return "cpu";
    case ResourceKind::Network:
      return "network";
  }
  return "unknown";
}

ProcessClass process_class_from_string(std::string_view s) {
  if (s == "application") return ProcessClass::Application;
  if (s == "paradyn_daemon") return ProcessClass::ParadynDaemon;
  if (s == "pvm_daemon") return ProcessClass::PvmDaemon;
  if (s == "other") return ProcessClass::Other;
  if (s == "main_paradyn") return ProcessClass::MainParadyn;
  throw std::invalid_argument("unknown process class: " + std::string(s));
}

ResourceKind resource_kind_from_string(std::string_view s) {
  if (s == "cpu") return ResourceKind::Cpu;
  if (s == "network") return ResourceKind::Network;
  throw std::invalid_argument("unknown resource kind: " + std::string(s));
}

}  // namespace paradyn::trace
