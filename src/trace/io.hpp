// CSV serialization of trace files.
//
// Format (one record per line, header required):
//   timestamp_us,node,pid,process_class,resource,duration_us
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "trace/record.hpp"

namespace paradyn::trace {

/// Write records as CSV (with header) to a stream.
void write_csv(std::ostream& os, const std::vector<TraceRecord>& records);

/// Write records as CSV to a file; throws std::runtime_error on I/O failure.
void write_csv_file(const std::string& path, const std::vector<TraceRecord>& records);

/// Parse CSV produced by write_csv; throws std::runtime_error on malformed
/// input (wrong header, bad field count, unparsable numbers).
[[nodiscard]] std::vector<TraceRecord> read_csv(std::istream& is);

/// Read a CSV trace file; throws std::runtime_error if unreadable.
[[nodiscard]] std::vector<TraceRecord> read_csv_file(const std::string& path);

}  // namespace paradyn::trace
