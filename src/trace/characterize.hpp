// Workload characterization (Section 2.3).
//
// Turns a trace into (1) per-class occupancy statistics — the paper's
// Table 1 — and (2) fitted occupancy-length / inter-arrival distributions —
// the paper's Table 2 — packaged as a WorkloadModel that parameterizes the
// ROCC simulator.
#pragma once

#include <array>
#include <map>
#include <optional>
#include <vector>

#include "stats/fitting.hpp"
#include "stats/summary.hpp"
#include "trace/record.hpp"

namespace paradyn::trace {

/// Raw occupancy-request lengths and arrival times grouped by
/// (process class, resource kind).
class OccupancyExtract {
 public:
  explicit OccupancyExtract(const std::vector<TraceRecord>& records);

  /// Occupancy-request lengths for a (class, resource) pair; empty if the
  /// trace contains no such records.
  [[nodiscard]] const std::vector<double>& lengths(ProcessClass c, ResourceKind r) const;

  /// Inter-arrival times between successive requests of a (class, resource)
  /// pair, computed per (node, pid) stream then pooled.
  [[nodiscard]] const std::vector<double>& interarrivals(ProcessClass c, ResourceKind r) const;

 private:
  [[nodiscard]] static std::size_t index(ProcessClass c, ResourceKind r) noexcept;
  std::array<std::vector<double>, kNumProcessClasses * kNumResourceKinds> lengths_;
  std::array<std::vector<double>, kNumProcessClasses * kNumResourceKinds> interarrivals_;
};

/// One row of Table 1: summary statistics of CPU and network occupancy.
struct OccupancyStatsRow {
  ProcessClass pclass = ProcessClass::Application;
  stats::SummaryStats cpu;
  stats::SummaryStats network;
};

/// Compute the Table 1 rows (classes with no records are omitted).
[[nodiscard]] std::vector<OccupancyStatsRow> occupancy_statistics(
    const std::vector<TraceRecord>& records);

/// Fitted workload for one process class (one block of Table 2).
struct ClassWorkload {
  stats::DistributionPtr cpu_length;
  stats::DistributionPtr net_length;
  std::optional<double> cpu_interarrival_mean;
  std::optional<double> net_interarrival_mean;
};

/// Fitted workload for the whole system: the parameterization that drives
/// the ROCC simulator.
struct WorkloadModel {
  std::map<ProcessClass, ClassWorkload> classes;

  [[nodiscard]] bool has(ProcessClass c) const { return classes.count(c) != 0; }
  [[nodiscard]] const ClassWorkload& at(ProcessClass c) const;
};

/// Fit a WorkloadModel from a trace: best-likelihood family per
/// (class, resource) for lengths, exponential mean for inter-arrivals
/// (the paper approximates all inter-arrival times as exponential).
[[nodiscard]] WorkloadModel characterize(const std::vector<TraceRecord>& records);

/// Fit-free alternative: drive the model from the interpolated empirical
/// distributions of the observed lengths (trace replay without committing
/// to a parametric family).  Classes with fewer than two observations of a
/// resource get no distribution for it.
[[nodiscard]] WorkloadModel characterize_empirical(const std::vector<TraceRecord>& records);

}  // namespace paradyn::trace
