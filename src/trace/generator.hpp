// Synthetic SP-2 trace generator.
//
// Substitute for the AIX kernel tracing facility: emits resource-occupancy
// records whose lengths and inter-arrival times are drawn from per-class
// generative models.  The default model reproduces the statistics the paper
// measured for NAS pvmbt on the SP-2 (Tables 1-2), so running the
// characterization pipeline on a generated trace regenerates Table 1/2.
#pragma once

#include <cstdint>
#include <vector>

#include "des/random.hpp"
#include "stats/distributions.hpp"
#include "stats/sampler.hpp"
#include "trace/record.hpp"

namespace paradyn::trace {

/// Generative model for one process class on one node.
struct ProcessTraceModel {
  ProcessClass pclass = ProcessClass::Application;
  /// Length of CPU occupancy requests.
  stats::DistributionPtr cpu_length;
  /// Length of network occupancy requests.
  stats::DistributionPtr net_length;
  /// Inter-arrival of CPU requests.  For the application process the paper
  /// models alternating computation/communication instead (Figure 7); set
  /// `alternating = true` and the generator emits CPU and network intervals
  /// back to back.
  stats::DistributionPtr cpu_interarrival;
  /// Inter-arrival of network requests (ignored when alternating).
  stats::DistributionPtr net_interarrival;
  bool alternating = false;
};

/// Whole-trace generative model: the set of processes active on a node.
struct Sp2TraceModel {
  std::vector<ProcessTraceModel> processes;
  double duration_us = 10e6;  ///< Trace length.
  /// Variate backend for generation.  Reference reproduces pre-ziggurat
  /// streams bit for bit (see stats/sampler.hpp).
  stats::SamplerBackend backend = stats::SamplerBackend::Ziggurat;

  /// The paper's SP-2 / NAS pvmbt parameterization (Tables 1-2): an
  /// alternating application process plus Paradyn daemon, PVM daemon, other
  /// processes, and the main Paradyn process.
  [[nodiscard]] static Sp2TraceModel paper_pvmbt(double duration_us = 10e6);
};

/// Generate a trace for `nodes` nodes under `model`, deterministically from
/// `seed`.  Records are returned sorted by timestamp.
[[nodiscard]] std::vector<TraceRecord> generate_trace(const Sp2TraceModel& model,
                                                      std::int32_t nodes, std::uint64_t seed);

}  // namespace paradyn::trace
