#include "trace/characterize.hpp"

#include "stats/empirical.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>
#include <utility>

namespace paradyn::trace {

std::size_t OccupancyExtract::index(ProcessClass c, ResourceKind r) noexcept {
  return static_cast<std::size_t>(c) * kNumResourceKinds + static_cast<std::size_t>(r);
}

OccupancyExtract::OccupancyExtract(const std::vector<TraceRecord>& records) {
  // Lengths: straight pooling.
  for (const TraceRecord& rec : records) {
    lengths_[index(rec.pclass, rec.resource)].push_back(rec.duration_us);
  }
  // Inter-arrivals: per (node, pid, resource) stream, then pooled.
  std::map<std::tuple<std::int32_t, std::int32_t, ResourceKind>, double> last_seen;
  // Records may be unsorted; sort a copy of (time) indices per stream.
  std::vector<const TraceRecord*> sorted;
  sorted.reserve(records.size());
  for (const TraceRecord& rec : records) sorted.push_back(&rec);
  std::stable_sort(sorted.begin(), sorted.end(), [](const TraceRecord* a, const TraceRecord* b) {
    return a->timestamp_us < b->timestamp_us;
  });
  for (const TraceRecord* rec : sorted) {
    const auto key = std::make_tuple(rec->node, rec->pid, rec->resource);
    const auto it = last_seen.find(key);
    if (it != last_seen.end()) {
      interarrivals_[index(rec->pclass, rec->resource)].push_back(rec->timestamp_us - it->second);
      it->second = rec->timestamp_us;
    } else {
      last_seen.emplace(key, rec->timestamp_us);
    }
  }
}

const std::vector<double>& OccupancyExtract::lengths(ProcessClass c, ResourceKind r) const {
  return lengths_[index(c, r)];
}

const std::vector<double>& OccupancyExtract::interarrivals(ProcessClass c, ResourceKind r) const {
  return interarrivals_[index(c, r)];
}

std::vector<OccupancyStatsRow> occupancy_statistics(const std::vector<TraceRecord>& records) {
  const OccupancyExtract extract(records);
  std::vector<OccupancyStatsRow> rows;
  for (int ci = 0; ci < kNumProcessClasses; ++ci) {
    const auto pclass = static_cast<ProcessClass>(ci);
    const auto& cpu = extract.lengths(pclass, ResourceKind::Cpu);
    const auto& net = extract.lengths(pclass, ResourceKind::Network);
    if (cpu.empty() && net.empty()) continue;
    OccupancyStatsRow row;
    row.pclass = pclass;
    row.cpu = stats::summarize(cpu);
    row.network = stats::summarize(net);
    rows.push_back(row);
  }
  return rows;
}

const ClassWorkload& WorkloadModel::at(ProcessClass c) const {
  const auto it = classes.find(c);
  if (it == classes.end()) {
    throw std::out_of_range("WorkloadModel: no workload for class " +
                            std::string(to_string(c)));
  }
  return it->second;
}

WorkloadModel characterize(const std::vector<TraceRecord>& records) {
  const OccupancyExtract extract(records);
  WorkloadModel model;
  for (int ci = 0; ci < kNumProcessClasses; ++ci) {
    const auto pclass = static_cast<ProcessClass>(ci);
    const auto& cpu = extract.lengths(pclass, ResourceKind::Cpu);
    const auto& net = extract.lengths(pclass, ResourceKind::Network);
    if (cpu.empty() && net.empty()) continue;

    ClassWorkload w;
    if (!cpu.empty()) w.cpu_length = stats::fit_best(cpu).distribution;
    if (!net.empty()) w.net_length = stats::fit_best(net).distribution;

    // The paper approximates inter-arrival times by exponentials; the MLE
    // for the exponential mean is the sample mean.
    const auto& cpu_ia = extract.interarrivals(pclass, ResourceKind::Cpu);
    const auto& net_ia = extract.interarrivals(pclass, ResourceKind::Network);
    if (!cpu_ia.empty()) w.cpu_interarrival_mean = stats::summarize(cpu_ia).mean();
    if (!net_ia.empty()) w.net_interarrival_mean = stats::summarize(net_ia).mean();

    model.classes.emplace(pclass, std::move(w));
  }
  return model;
}

WorkloadModel characterize_empirical(const std::vector<TraceRecord>& records) {
  const OccupancyExtract extract(records);
  WorkloadModel model;
  for (int ci = 0; ci < kNumProcessClasses; ++ci) {
    const auto pclass = static_cast<ProcessClass>(ci);
    const auto& cpu = extract.lengths(pclass, ResourceKind::Cpu);
    const auto& net = extract.lengths(pclass, ResourceKind::Network);
    if (cpu.size() < 2 && net.size() < 2) continue;

    ClassWorkload w;
    if (cpu.size() >= 2) w.cpu_length = std::make_shared<stats::Empirical>(cpu);
    if (net.size() >= 2) w.net_length = std::make_shared<stats::Empirical>(net);

    const auto& cpu_ia = extract.interarrivals(pclass, ResourceKind::Cpu);
    const auto& net_ia = extract.interarrivals(pclass, ResourceKind::Network);
    if (!cpu_ia.empty()) w.cpu_interarrival_mean = stats::summarize(cpu_ia).mean();
    if (!net_ia.empty()) w.net_interarrival_mean = stats::summarize(net_ia).mean();

    model.classes.emplace(pclass, std::move(w));
  }
  return model;
}

}  // namespace paradyn::trace
