#include "trace/generator.hpp"

#include <algorithm>
#include <memory>
#include <stdexcept>

namespace paradyn::trace {
namespace {

using stats::Exponential;
using stats::Lognormal;

std::shared_ptr<const Exponential> exponential(double mean) {
  return std::make_shared<Exponential>(mean);
}

std::shared_ptr<const Lognormal> lognormal(double mean, double stddev) {
  return std::make_shared<Lognormal>(Lognormal::from_mean_stddev(mean, stddev));
}

}  // namespace

Sp2TraceModel Sp2TraceModel::paper_pvmbt(double duration_us) {
  Sp2TraceModel model;
  model.duration_us = duration_us;

  // Application process: alternating computation/communication states
  // (Figure 7); lengths from Table 2.
  ProcessTraceModel app;
  app.pclass = ProcessClass::Application;
  app.cpu_length = lognormal(2213.0, 3034.0);
  app.net_length = exponential(223.0);
  app.alternating = true;
  model.processes.push_back(app);

  // Paradyn daemon: one CPU + one network request per collected sample;
  // inter-arrival = the typical 40 ms sampling period (Table 2).
  ProcessTraceModel pd;
  pd.pclass = ProcessClass::ParadynDaemon;
  pd.cpu_length = exponential(267.0);
  pd.net_length = exponential(71.0);
  pd.cpu_interarrival = exponential(40'000.0);
  pd.net_interarrival = exponential(40'000.0);
  model.processes.push_back(pd);

  // PVM daemon (Table 2).
  ProcessTraceModel pvmd;
  pvmd.pclass = ProcessClass::PvmDaemon;
  pvmd.cpu_length = lognormal(294.0, 206.0);
  pvmd.net_length = exponential(58.0);
  pvmd.cpu_interarrival = exponential(6'485.0);
  pvmd.net_interarrival = exponential(6'485.0);
  model.processes.push_back(pvmd);

  // Other user/system processes (Table 2).
  ProcessTraceModel other;
  other.pclass = ProcessClass::Other;
  other.cpu_length = lognormal(367.0, 819.0);
  other.net_length = exponential(92.0);
  other.cpu_interarrival = exponential(31'485.0);
  other.net_interarrival = exponential(5'598'903.0);
  model.processes.push_back(other);

  // Main Paradyn process (Table 1 statistics); its requests arrive with
  // the aggregate sample stream, approximated here by the sampling period.
  ProcessTraceModel main_p;
  main_p.pclass = ProcessClass::MainParadyn;
  main_p.cpu_length = lognormal(3'208.0, 3'287.0);
  main_p.net_length = lognormal(214.0, 451.0);
  main_p.cpu_interarrival = exponential(40'000.0);
  main_p.net_interarrival = exponential(40'000.0);
  model.processes.push_back(main_p);

  return model;
}

std::vector<TraceRecord> generate_trace(const Sp2TraceModel& model, std::int32_t nodes,
                                        std::uint64_t seed) {
  if (nodes <= 0) throw std::invalid_argument("generate_trace: nodes must be > 0");
  if (!(model.duration_us > 0.0)) {
    throw std::invalid_argument("generate_trace: duration must be > 0");
  }

  std::vector<TraceRecord> records;
  std::int32_t next_pid = 1;

  for (std::int32_t node = 0; node < nodes; ++node) {
    for (std::size_t pi = 0; pi < model.processes.size(); ++pi) {
      const ProcessTraceModel& pm = model.processes[pi];
      // The main Paradyn process only exists on the host node (node 0).
      if (pm.pclass == ProcessClass::MainParadyn && node != 0) continue;

      const std::int32_t pid = next_pid++;
      des::RngStream rng(seed, static_cast<std::uint64_t>(node) * 131 + pi, 17);
      const auto freeze = [&](const stats::DistributionPtr& dist) {
        return stats::FrozenSampler::compile(dist, model.backend);
      };

      if (pm.alternating) {
        if (!pm.cpu_length || !pm.net_length) {
          throw std::invalid_argument("generate_trace: alternating process needs both lengths");
        }
        const stats::FrozenSampler cpu_length = freeze(pm.cpu_length);
        const stats::FrozenSampler net_length = freeze(pm.net_length);
        double t = 0.0;
        while (t < model.duration_us) {
          const double cpu = cpu_length(rng);
          records.push_back({t, node, pid, pm.pclass, ResourceKind::Cpu, cpu});
          t += cpu;
          if (t >= model.duration_us) break;
          const double net = net_length(rng);
          records.push_back({t, node, pid, pm.pclass, ResourceKind::Network, net});
          t += net;
        }
      } else {
        if (pm.cpu_length && pm.cpu_interarrival) {
          const stats::FrozenSampler length = freeze(pm.cpu_length);
          const stats::FrozenSampler interarrival = freeze(pm.cpu_interarrival);
          double t = interarrival(rng);
          while (t < model.duration_us) {
            records.push_back({t, node, pid, pm.pclass, ResourceKind::Cpu, length(rng)});
            t += interarrival(rng);
          }
        }
        if (pm.net_length && pm.net_interarrival) {
          const stats::FrozenSampler length = freeze(pm.net_length);
          const stats::FrozenSampler interarrival = freeze(pm.net_interarrival);
          double t = interarrival(rng);
          while (t < model.duration_us) {
            records.push_back({t, node, pid, pm.pclass, ResourceKind::Network, length(rng)});
            t += interarrival(rng);
          }
        }
      }
    }
  }

  std::sort(records.begin(), records.end(), [](const TraceRecord& a, const TraceRecord& b) {
    if (a.timestamp_us != b.timestamp_us) return a.timestamp_us < b.timestamp_us;
    if (a.node != b.node) return a.node < b.node;
    return a.pid < b.pid;
  });
  return records;
}

}  // namespace paradyn::trace
