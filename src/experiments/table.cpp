#include "experiments/table.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace paradyn::experiments {

TablePrinter::TablePrinter(std::string title, std::vector<std::string> headers)
    : title_(std::move(title)), headers_(std::move(headers)) {
  if (headers_.empty()) throw std::invalid_argument("TablePrinter: need at least one column");
}

void TablePrinter::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("TablePrinter: row width mismatch");
  }
  rows_.push_back(std::move(cells));
}

void TablePrinter::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());
  }

  const auto rule = [&] {
    for (const std::size_t w : widths) os << '+' << std::string(w + 2, '-');
    os << "+\n";
  };
  const auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << "| " << std::setw(static_cast<int>(widths[c])) << std::left << cells[c] << ' ';
    }
    os << "|\n";
  };

  os << title_ << '\n';
  rule();
  emit(headers_);
  rule();
  for (const auto& row : rows_) emit(row);
  rule();
}

std::string fmt(double v, int digits) {
  std::ostringstream os;
  if (std::isinf(v)) return v > 0 ? "inf" : "-inf";
  if (std::isnan(v)) return "nan";
  os << std::fixed << std::setprecision(digits) << v;
  return os.str();
}

std::string fmt_ci(double mean, double half_width, int digits) {
  return fmt(mean, digits) + " +- " + fmt(half_width, digits);
}

void print_series(std::ostream& os, const std::string& title, const std::string& x_label,
                  const std::vector<double>& xs, const std::vector<std::string>& series_names,
                  const std::vector<std::vector<double>>& series, int digits) {
  if (series_names.size() != series.size()) {
    throw std::invalid_argument("print_series: one name per series required");
  }
  for (const auto& s : series) {
    if (s.size() != xs.size()) {
      throw std::invalid_argument("print_series: series length must match xs");
    }
  }
  std::vector<std::string> headers{x_label};
  headers.insert(headers.end(), series_names.begin(), series_names.end());
  TablePrinter table(title, headers);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    std::vector<std::string> row{fmt(xs[i], 2)};
    for (const auto& s : series) row.push_back(fmt(s[i], digits));
    table.add_row(std::move(row));
  }
  table.print(os);
}

void write_series_csv(std::ostream& os, const std::string& x_label,
                      const std::vector<double>& xs,
                      const std::vector<std::string>& series_names,
                      const std::vector<std::vector<double>>& series) {
  if (series_names.size() != series.size()) {
    throw std::invalid_argument("write_series_csv: one name per series required");
  }
  for (const auto& s : series) {
    if (s.size() != xs.size()) {
      throw std::invalid_argument("write_series_csv: series length must match xs");
    }
  }
  os << x_label;
  for (const auto& name : series_names) os << ',' << name;
  os << '\n';
  for (std::size_t i = 0; i < xs.size(); ++i) {
    os << xs[i];
    for (const auto& s : series) os << ',' << s[i];
    os << '\n';
  }
}

}  // namespace paradyn::experiments
