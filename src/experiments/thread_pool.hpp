// Fixed-size worker pool for the parallel experiment engine.
//
// Deliberately minimal: a fixed worker count, one FIFO task queue, and
// std::future-based exception propagation.  No work stealing, no task
// priorities — replication workloads are coarse (whole simulations), so a
// single shared queue keeps every worker busy until the queue drains.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <type_traits>
#include <vector>

namespace paradyn::experiments {

class ThreadPool {
 public:
  /// Spawn `threads` workers (at least 1).
  explicit ThreadPool(std::size_t threads);

  /// Drains the queue (pending tasks still run), then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueue a callable; the returned future yields its result or rethrows
  /// the exception it threw on the worker thread.
  template <typename F>
  auto submit(F f) -> std::future<std::invoke_result_t<F&>> {
    using R = std::invoke_result_t<F&>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::move(f));
    std::future<R> future = task->get_future();
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (stopping_) throw std::runtime_error("ThreadPool: submit after shutdown");
      queue_.emplace_back([task] { (*task)(); });
    }
    cv_.notify_one();
    return future;
  }

  /// std::thread::hardware_concurrency with a floor of 1 (the standard
  /// allows it to report 0 when unknown).
  [[nodiscard]] static std::size_t hardware_jobs() noexcept;

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

}  // namespace paradyn::experiments
