#include "experiments/thread_pool.hpp"

#include <algorithm>

namespace paradyn::experiments {

ThreadPool::ThreadPool(std::size_t threads) {
  threads = std::max<std::size_t>(1, threads);
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();  // packaged_task captures any exception into the future
  }
}

std::size_t ThreadPool::hardware_jobs() noexcept {
  return std::max<std::size_t>(1, std::thread::hardware_concurrency());
}

}  // namespace paradyn::experiments
