// ThreadPool-backed executor for the conservative-window PDES shard loop.
//
// des::ShardSet runs each synchronized window by invoking `body(s)` for
// every shard; the default is a serial loop.  This adapter fans the bodies
// out over a ThreadPool — shard 0 runs inline on the caller (one shard
// always gets the calling thread; no point parking it), the rest are
// submitted and joined via futures, whose get() establishes the
// happens-before edge the ShardSet determinism contract requires.  Results
// are bit-identical to the serial loop: shards share no mutable state
// inside a window.
#pragma once

#include <algorithm>
#include <cstddef>
#include <future>
#include <vector>

#include "des/shard.hpp"
#include "experiments/thread_pool.hpp"

namespace paradyn::experiments {

/// Build a ShardSet executor on top of `pool`.  The pool must outlive every
/// run using the executor.  Worker exceptions propagate to the caller
/// through the futures.
[[nodiscard]] inline des::ShardSet::Executor shard_pool_executor(ThreadPool& pool) {
  return [&pool](std::size_t count, const std::function<void(std::size_t)>& body) {
    if (count <= 1) {
      if (count == 1) body(0);
      return;
    }
    std::vector<std::future<void>> joins;
    joins.reserve(count - 1);
    for (std::size_t s = 1; s < count; ++s) {
      joins.push_back(pool.submit([&body, s] { body(s); }));
    }
    body(0);
    for (auto& join : joins) join.get();
  };
}

/// Lane-bounded variant: at most `lanes` threads touch a window (the caller
/// plus lanes-1 pool workers), each running shards `lane, lane+w, lane+2w,
/// ...` in index order.  roccsweep uses this to clamp per-job shard workers
/// when --jobs x --shards would oversubscribe the machine.  Shards still
/// share no mutable state inside a window, so results stay bit-identical to
/// the serial loop for any lane count.
[[nodiscard]] inline des::ShardSet::Executor shard_pool_executor(ThreadPool& pool,
                                                                std::size_t lanes) {
  return [&pool, lanes](std::size_t count, const std::function<void(std::size_t)>& body) {
    const std::size_t w = std::min(lanes, count);
    if (w <= 1) {
      for (std::size_t s = 0; s < count; ++s) body(s);
      return;
    }
    std::vector<std::future<void>> joins;
    joins.reserve(w - 1);
    for (std::size_t lane = 1; lane < w; ++lane) {
      joins.push_back(pool.submit([&body, lane, w, count] {
        for (std::size_t s = lane; s < count; s += w) body(s);
      }));
    }
    for (std::size_t s = 0; s < count; s += w) body(s);
    for (auto& join : joins) join.get();
  };
}

}  // namespace paradyn::experiments
