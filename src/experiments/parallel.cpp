#include "experiments/parallel.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <ctime>
#include <exception>
#include <future>
#include <optional>
#include <ostream>
#include <utility>

#include "experiments/thread_pool.hpp"
#include "obs/progress.hpp"

namespace paradyn::experiments {

namespace {

std::atomic<std::size_t> g_default_jobs{0};  // 0 = hardware concurrency
std::atomic<std::ostream*> g_progress{nullptr};

double now_sec() {
  return std::chrono::duration<double>(std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

double cpu_sec() { return static_cast<double>(std::clock()) / CLOCKS_PER_SEC; }

}  // namespace

void set_default_jobs(std::size_t jobs) noexcept { g_default_jobs.store(jobs); }

std::size_t default_jobs() noexcept {
  const std::size_t jobs = g_default_jobs.load();
  return jobs == 0 ? ThreadPool::hardware_jobs() : jobs;
}

void set_progress_stream(std::ostream* os) noexcept { g_progress.store(os); }

std::ostream* progress_stream() noexcept { return g_progress.load(); }

double RunReport::speedup_estimate() const noexcept {
  if (!(wall_sec > 0.0)) return 1.0;
  return serial_estimate_sec / wall_sec;
}

RunReport& RunReport::operator+=(const RunReport& other) {
  jobs = other.jobs;  // sweeps run every set with the same job count
  runs += other.runs;
  wall_sec += other.wall_sec;
  cpu_sec += other.cpu_sec;
  serial_estimate_sec += other.serial_estimate_sec;
  events += other.events;
  return *this;
}

void RunReport::print(std::ostream& os, std::string_view label) const {
  char line[256];
  std::snprintf(line, sizeof(line),
                "[%.*s] jobs=%zu runs=%zu wall=%.2fs cpu=%.2fs serial-est=%.2fs speedup=%.2fx"
                " events=%llu (%.2fM ev/s)\n",
                static_cast<int>(label.size()), label.data(), jobs, runs, wall_sec, cpu_sec,
                serial_estimate_sec, speedup_estimate(),
                static_cast<unsigned long long>(events),
                wall_sec > 0.0 ? static_cast<double>(events) / wall_sec / 1e6 : 0.0);
  os << line;
  if (cells.size() > 1) {
    os << '[' << label << "] per-cell wall (s):";
    for (const auto& c : cells) {
      std::snprintf(line, sizeof(line), " %03x=%.2f", c.mask, c.wall_sec);
      os << line;
    }
    os << '\n';
  }
}

ParallelRunner::ParallelRunner(std::size_t jobs) : jobs_(jobs == 0 ? default_jobs() : jobs) {}

std::vector<rocc::SimulationResult> ParallelRunner::replications(const rocc::SystemConfig& config,
                                                                 std::size_t n) {
  auto grid = run_grid({config}, config.seed, n);
  return std::move(grid.front());
}

std::vector<std::vector<rocc::SimulationResult>> ParallelRunner::cells(
    const std::vector<rocc::SystemConfig>& cell_configs, std::uint64_t base_seed,
    std::size_t replications) {
  return run_grid(cell_configs, base_seed, replications);
}

std::vector<std::vector<rocc::SimulationResult>> ParallelRunner::run_grid(
    const std::vector<rocc::SystemConfig>& cell_configs, std::uint64_t base_seed,
    std::size_t replications) {
  const std::size_t num_cells = cell_configs.size();
  report_ = RunReport{};
  report_.jobs = jobs_;
  report_.runs = num_cells * replications;
  report_.cells.resize(num_cells);
  for (std::size_t i = 0; i < num_cells; ++i) {
    report_.cells[i].mask = static_cast<unsigned>(i);
    report_.cells[i].replications = replications;
  }

  std::vector<std::vector<rocc::SimulationResult>> results(num_cells);
  for (auto& cell : results) cell.resize(replications);
  // Per-run wall times, written lock-free: each run owns one slot.
  std::vector<double> run_wall(num_cells * replications, 0.0);

  const double wall0 = now_sec();
  const double cpu0 = cpu_sec();

  std::optional<obs::ProgressMeter> meter;
  if (std::ostream* ps = progress_stream()) {
    meter.emplace(*ps, "sweep", report_.runs);
  }

  const auto run_one = [&](std::size_t cell, std::size_t rep) {
    rocc::SystemConfig c = cell_configs[cell];
    c.seed = base_seed + rep;  // common random numbers across cells
    const double t0 = now_sec();
    rocc::Simulation sim(std::move(c));
    if (hook_) hook_(sim, cell, rep);
    results[cell][rep] = sim.run();
    run_wall[cell * replications + rep] = now_sec() - t0;
    if (meter) meter->run_completed(results[cell][rep].events_processed);
  };

  if (jobs_ <= 1) {
    // Legacy serial path: same iteration order as the pre-parallel code.
    for (std::size_t cell = 0; cell < num_cells; ++cell) {
      for (std::size_t rep = 0; rep < replications; ++rep) run_one(cell, rep);
    }
  } else {
    ThreadPool pool(jobs_);
    std::vector<std::future<void>> futures;
    futures.reserve(num_cells * replications);
    for (std::size_t cell = 0; cell < num_cells; ++cell) {
      for (std::size_t rep = 0; rep < replications; ++rep) {
        futures.push_back(pool.submit([&run_one, cell, rep] { run_one(cell, rep); }));
      }
    }
    // Wait for every run, then rethrow the first failure (in run order) on
    // the caller thread so parallel and serial error behavior agree.
    std::exception_ptr first_error;
    for (auto& f : futures) {
      try {
        f.get();
      } catch (...) {
        if (!first_error) first_error = std::current_exception();
      }
    }
    if (first_error) std::rethrow_exception(first_error);
  }

  if (meter) meter->finish();
  report_.wall_sec = now_sec() - wall0;
  report_.cpu_sec = cpu_sec() - cpu0;
  for (std::size_t cell = 0; cell < num_cells; ++cell) {
    double cell_wall = 0.0;
    for (std::size_t rep = 0; rep < replications; ++rep) {
      cell_wall += run_wall[cell * replications + rep];
      report_.events += results[cell][rep].events_processed;
    }
    report_.cells[cell].wall_sec = cell_wall;
    report_.serial_estimate_sec += cell_wall;
  }
  return results;
}

}  // namespace paradyn::experiments
