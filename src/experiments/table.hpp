// ASCII table and series printers for the experiment harnesses.
//
// Every bench binary regenerates one of the paper's tables or figures as
// fixed-width text: tables print rows of cells, figures print one row per
// x-value with one column per series (exactly the data the paper plots).
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace paradyn::experiments {

/// Fixed-width column table with a title and optional caption.
class TablePrinter {
 public:
  TablePrinter(std::string title, std::vector<std::string> headers);

  /// Append a row; must have exactly one cell per header.
  void add_row(std::vector<std::string> cells);

  /// Render with column widths fitted to content.
  void print(std::ostream& os) const;

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }

 private:
  std::string title_;
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format a double with `digits` significant-looking decimals.
[[nodiscard]] std::string fmt(double v, int digits = 3);

/// Format "mean +- half-width" for a confidence interval.
[[nodiscard]] std::string fmt_ci(double mean, double half_width, int digits = 3);

/// Print a figure-style data block: a header naming the series, then one
/// row per x-value.  `series[i][j]` is series i's value at x j.
void print_series(std::ostream& os, const std::string& title, const std::string& x_label,
                  const std::vector<double>& xs, const std::vector<std::string>& series_names,
                  const std::vector<std::vector<double>>& series, int digits = 4);

/// Write the same figure data as CSV (header row: x_label,name1,name2,...)
/// for external re-plotting.  Same validation as print_series.
void write_series_csv(std::ostream& os, const std::string& x_label,
                      const std::vector<double>& xs,
                      const std::vector<std::string>& series_names,
                      const std::vector<std::vector<double>>& series);

}  // namespace paradyn::experiments
