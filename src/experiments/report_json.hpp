// Machine-readable run reports (--report-json).
//
// Serializes the full SimulationResult of every run — not just the handful
// of columns a figure needs — plus the parallel wall/CPU/speedup accounting
// and a reproducibility stamp, so downstream analysis never has to re-run a
// sweep to recover a metric the CSV omitted.
#pragma once

#include <iosfwd>
#include <vector>

#include "experiments/parallel.hpp"
#include "obs/repro.hpp"
#include "rocc/metrics.hpp"

namespace paradyn::obs {
class MetricsRegistry;
struct ProfileReport;
}  // namespace paradyn::obs

namespace paradyn::experiments {

/// One SimulationResult as a JSON object (no trailing newline).  `indent`
/// is the number of leading spaces applied to every line.
void write_result_json(std::ostream& os, const rocc::SimulationResult& r, int indent = 0);

/// Complete report document:
///   {"stamp": {...}, "results": [...], "parallel": {...}, "bottlenecks": [...]}
/// `report` may be null (single direct run, no runner accounting).
/// `profile` may be null (no --profile); when set, the profiler's W3
/// hypothesis findings are appended as a "bottlenecks" array plus the
/// dominant lifecycle hop — absent otherwise, keeping profiling-off
/// reports byte-identical to the previous format.
void write_report_json(std::ostream& os, const obs::ReproStamp& stamp,
                       const std::vector<rocc::SimulationResult>& results,
                       const RunReport* report, const obs::ProfileReport* profile = nullptr);

/// The metrics registry as structured JSON (--metrics-json): histogram
/// summaries plus the probe time series, mirroring MetricsRegistry's CSV.
void write_metrics_json(std::ostream& os, const obs::MetricsRegistry& metrics);

}  // namespace paradyn::experiments
