#include "experiments/runner.hpp"

#include <stdexcept>
#include <utility>

#include "experiments/parallel.hpp"

namespace paradyn::experiments {

ReplicationSet::ReplicationSet(const rocc::SystemConfig& config, std::size_t replications,
                               std::size_t jobs, RunHook hook) {
  // Validate before any simulation runs (the old member-initializer form
  // ran the replications before this guard could fire).
  if (replications == 0) throw std::invalid_argument("ReplicationSet: replications must be > 0");
  ParallelRunner runner(jobs);
  runner.set_run_hook(std::move(hook));
  results_ = runner.replications(config, replications);
  report_ = runner.report();
}

stats::ConfidenceInterval ReplicationSet::metric(const MetricFn& fn, double level) const {
  stats::SummaryStats s;
  for (const auto& r : results_) s.add(fn(r));
  if (s.count() < 2) {
    // Degenerate interval for r = 1 (roccsweep's default): the single
    // observation is the mean and no dispersion estimate exists.
    stats::ConfidenceInterval ci;
    ci.mean = s.mean();
    ci.half_width = 0.0;
    ci.level = level;
    return ci;
  }
  return stats::mean_confidence_interval(s, level);
}

double ReplicationSet::mean(const MetricFn& fn) const {
  stats::SummaryStats s;
  for (const auto& r : results_) s.add(fn(r));
  return s.mean();
}

double FactorialCell::mean(const MetricFn& fn) const {
  stats::SummaryStats s;
  for (const auto& r : runs) s.add(fn(r));
  return s.mean();
}

FactorialExperiment::FactorialExperiment(rocc::SystemConfig base, std::vector<Factor> factors,
                                         std::size_t replications, std::size_t jobs,
                                         RunHook hook)
    : factors_(std::move(factors)), replications_(replications) {
  if (factors_.empty()) throw std::invalid_argument("FactorialExperiment: need factors");
  if (factors_.size() > 8) throw std::invalid_argument("FactorialExperiment: too many factors");
  if (replications_ == 0) {
    throw std::invalid_argument("FactorialExperiment: replications must be > 0");
  }

  const unsigned num_cells = 1U << factors_.size();
  cells_.reserve(num_cells);
  std::vector<rocc::SystemConfig> cell_configs;
  cell_configs.reserve(num_cells);
  for (unsigned mask = 0; mask < num_cells; ++mask) {
    FactorialCell cell;
    cell.mask = mask;
    cell.config = base;
    for (std::size_t f = 0; f < factors_.size(); ++f) {
      factors_[f].apply(cell.config, (mask >> f) & 1U);
    }
    cell_configs.push_back(cell.config);
    cells_.push_back(std::move(cell));
  }

  ParallelRunner runner(jobs);
  runner.set_run_hook(std::move(hook));
  auto runs = runner.cells(cell_configs, base.seed, replications_);
  for (unsigned mask = 0; mask < num_cells; ++mask) cells_[mask].runs = std::move(runs[mask]);
  report_ = runner.report();
}

stats::FactorialAnalysis FactorialExperiment::analyze(const MetricFn& fn) const {
  std::vector<std::string> names;
  names.reserve(factors_.size());
  for (const auto& f : factors_) names.push_back(f.name);
  stats::FactorialDesign design(names, replications_);
  for (const auto& cell : cells_) {
    for (std::size_t rep = 0; rep < cell.runs.size(); ++rep) {
      design.set_response(cell.mask, rep, fn(cell.runs[rep]));
    }
  }
  return design.analyze();
}

}  // namespace paradyn::experiments
