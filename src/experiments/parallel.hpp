// Parallel execution of replicated ROCC simulations.
//
// ParallelRunner fans the independent simulation runs of a replication set
// or a 2^k r factorial out over a ThreadPool.  Every run is seeded exactly
// as the serial path seeds it (seed = base seed + replication index, the
// paper's common-random-numbers pairing), each result lands in a
// preallocated slot keyed by its run index, and worker exceptions are
// rethrown on the caller thread — so results are bit-identical to a serial
// run for any job count.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string_view>
#include <vector>

#include "rocc/simulation.hpp"

namespace paradyn::experiments {

/// Wall/CPU accounting for one parallel run, emitted to stderr by the CLI
/// tools.  `serial_estimate_sec` sums the per-run wall times, i.e. what a
/// one-job run of the same work would roughly have cost.
struct RunReport {
  struct Cell {
    unsigned mask = 0;          ///< Factorial cell index (bit i = factor i high).
    std::size_t replications = 0;
    double wall_sec = 0.0;      ///< Sum of this cell's per-run wall times.
  };

  std::size_t jobs = 1;
  std::size_t runs = 0;              ///< Total simulations executed.
  double wall_sec = 0.0;             ///< Caller-side elapsed time.
  double cpu_sec = 0.0;              ///< Process CPU time consumed.
  double serial_estimate_sec = 0.0;  ///< Sum of per-run wall times.
  std::uint64_t events = 0;          ///< Discrete events executed, all runs.
  std::vector<Cell> cells;

  /// serial_estimate_sec / wall_sec (1.0 when wall time is ~0).
  [[nodiscard]] double speedup_estimate() const noexcept;

  /// Accumulate another report's totals (used by sweeps that run many
  /// sets); per-cell detail is not merged.
  RunReport& operator+=(const RunReport& other);

  /// Two-part human-readable summary: totals line + per-cell walls.
  void print(std::ostream& os, std::string_view label) const;
};

/// Process-wide default job count used when a runner (or ReplicationSet /
/// FactorialExperiment) is constructed with jobs = 0.  Setting 0 restores
/// the initial default of one job per hardware thread.
void set_default_jobs(std::size_t jobs) noexcept;
[[nodiscard]] std::size_t default_jobs() noexcept;

/// Process-wide progress/heartbeat stream (typically &std::cerr, enabled by
/// the tools' --progress flag).  While set, every ParallelRunner grid run
/// emits throttled "[sweep] N/M runs ... ev/s ... eta" lines as runs finish.
/// nullptr (the default) disables reporting.
void set_progress_stream(std::ostream* os) noexcept;
[[nodiscard]] std::ostream* progress_stream() noexcept;

/// Per-run customization hook, applied to each Simulation after
/// construction and before run() — the observability path: attach tracers
/// and metrics probes to chosen runs of a sweep.  Called on worker threads;
/// implementations must be thread-safe across concurrent (cell, rep) pairs.
using RunHook = std::function<void(rocc::Simulation& sim, std::size_t cell, std::size_t rep)>;

class ParallelRunner {
 public:
  /// jobs = 0 picks up default_jobs(); jobs = 1 is the legacy serial path
  /// (runs inline on the caller thread, no pool).
  explicit ParallelRunner(std::size_t jobs = 0);

  [[nodiscard]] std::size_t jobs() const noexcept { return jobs_; }

  /// `n` replications of one configuration, seeds config.seed + 0..n-1.
  /// Identical to rocc::run_replications for every job count.
  [[nodiscard]] std::vector<rocc::SimulationResult> replications(const rocc::SystemConfig& config,
                                                                 std::size_t n);

  /// All cells x replications of a factorial: run r of cell i executes
  /// cell_configs[i] with seed = base_seed + r.  Returns one result vector
  /// per cell, in cell order.
  [[nodiscard]] std::vector<std::vector<rocc::SimulationResult>> cells(
      const std::vector<rocc::SystemConfig>& cell_configs, std::uint64_t base_seed,
      std::size_t replications);

  /// Accounting for the most recent replications()/cells() call.
  [[nodiscard]] const RunReport& report() const noexcept { return report_; }

  /// Install (or clear, with an empty function) the per-run hook.
  void set_run_hook(RunHook hook) { hook_ = std::move(hook); }

 private:
  std::vector<std::vector<rocc::SimulationResult>> run_grid(
      const std::vector<rocc::SystemConfig>& cell_configs, std::uint64_t base_seed,
      std::size_t replications);

  std::size_t jobs_;
  RunReport report_;
  RunHook hook_;
};

}  // namespace paradyn::experiments
