#include "experiments/report_json.hpp"

#include <ostream>
#include <string>

#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "util/json_writer.hpp"

namespace paradyn::experiments {
namespace {

// Shared writer helpers (also used by --metrics-json and roccprof --json),
// so every JSON document formats numbers/strings identically.
using util::json::number;
using util::json::Obj;
using util::json::quoted;

void summary_json(std::ostream& os, const stats::SummaryStats& s, int indent) {
  Obj o(os, indent);
  o.key("count") << s.count();
  o.key("mean");
  number(os, s.mean());
  o.key("stddev");
  number(os, s.stddev());
  o.key("min");
  number(os, s.min());
  o.key("max");
  number(os, s.max());
  o.close();
}

}  // namespace

void write_result_json(std::ostream& os, const rocc::SimulationResult& r, int indent) {
  Obj o(os, indent);
  o.key("duration_us");
  number(os, r.duration_us);
  o.key("nodes") << r.nodes;
  o.key("cpus_per_node") << r.cpus_per_node;

  o.key("app_cpu_time_per_node_us");
  number(os, r.app_cpu_time_per_node_us);
  o.key("pd_cpu_time_per_node_us");
  number(os, r.pd_cpu_time_per_node_us);
  o.key("pvmd_cpu_time_per_node_us");
  number(os, r.pvmd_cpu_time_per_node_us);
  o.key("other_cpu_time_per_node_us");
  number(os, r.other_cpu_time_per_node_us);
  o.key("main_cpu_time_us");
  number(os, r.main_cpu_time_us);

  o.key("app_cpu_util_pct");
  number(os, r.app_cpu_util_pct);
  o.key("pd_cpu_util_pct");
  number(os, r.pd_cpu_util_pct);
  o.key("main_cpu_util_pct");
  number(os, r.main_cpu_util_pct);
  o.key("is_cpu_util_pct");
  number(os, r.is_cpu_util_pct);
  o.key("pd_busy_share_pct");
  number(os, r.pd_busy_share_pct);
  o.key("network_util_pct");
  number(os, r.network_util_pct);

  o.key("latency_us");
  summary_json(os, r.latency_us, indent + 2);

  o.key("samples_generated") << r.samples_generated;
  o.key("samples_delivered") << r.samples_delivered;
  o.key("batches_delivered") << r.batches_delivered;
  o.key("throughput_samples_per_sec");
  number(os, r.throughput_samples_per_sec);
  o.key("events_processed") << r.events_processed;

  o.key("barrier_rounds") << r.barrier_rounds;
  o.key("barrier_wait_us");
  number(os, r.barrier_wait_us);
  o.key("final_sampling_period_us");
  number(os, r.final_sampling_period_us);

  // Fault-injection and throttle blocks are emitted only when populated,
  // so fault-free reports are byte-identical to the pre-fault format.
  if (r.samples_dropped != 0 || !r.fault_outcomes.empty()) {
    o.key("samples_dropped") << r.samples_dropped;
  }
  if (!r.fault_outcomes.empty()) {
    o.key("faults") << '[';
    for (std::size_t f = 0; f < r.fault_outcomes.size(); ++f) {
      const auto& fo = r.fault_outcomes[f];
      if (f != 0) os << ", ";
      os << "{\"spec\": ";
      quoted(os, fo.spec.describe());
      os << ", \"type\": ";
      quoted(os, rocc::to_string(fo.spec.type));
      os << ", \"target\": " << fo.spec.target;
      os << ", \"start_us\": ";
      number(os, fo.spec.start_us);
      os << ", \"duration_us\": ";
      number(os, fo.spec.duration_us);
      os << ", \"magnitude\": ";
      number(os, fo.spec.magnitude);
      os << ", \"injected\": " << (fo.injected ? "true" : "false");
      os << ", \"detected\": " << (fo.detected ? "true" : "false");
      os << ", \"detection_latency_us\": ";
      number(os, fo.detection_latency_us);
      os << ", \"recovered\": " << (fo.recovered ? "true" : "false");
      os << ", \"recovery_latency_us\": ";
      number(os, fo.recovery_latency_us);
      // The cascade marker appears only on induced rows, so fault reports
      // from cascade-free runs keep the pre-cascade byte layout.
      if (fo.cascaded_from >= 0) {
        os << ", \"cascaded_from\": " << fo.cascaded_from;
      }
      os << '}';
    }
    os << ']';
    // The repairs[] block is emitted only when a repair policy was armed,
    // so repair-free fault reports are byte-identical to the pre-repair
    // format.  One entry per plan fault with at least one attempt.
    bool any_repair = false;
    for (const auto& fo : r.fault_outcomes) any_repair |= fo.repair_attempted;
    if (any_repair) {
      o.key("repairs") << '[';
      bool first_repair = true;
      for (std::size_t f = 0; f < r.fault_outcomes.size(); ++f) {
        const auto& fo = r.fault_outcomes[f];
        if (!fo.repair_attempted) continue;
        if (!first_repair) os << ", ";
        first_repair = false;
        os << "{\"fault\": " << f;
        os << ", \"attempts\": " << fo.repair_attempts;
        os << ", \"repaired\": " << (fo.repaired ? "true" : "false");
        os << ", \"gave_up\": " << (fo.gave_up ? "true" : "false");
        os << ", \"time_to_repair_us\": ";
        number(os, fo.time_to_repair_us);
        os << ", \"backoff_us\": ";
        number(os, fo.repair_backoff_us);
        os << '}';
      }
      os << ']';
    }
  }
  if (!r.throttle_factors.empty()) {
    o.key("throttle_factors") << '[';
    for (std::size_t t = 0; t < r.throttle_factors.size(); ++t) {
      if (t != 0) os << ", ";
      number(os, r.throttle_factors[t]);
    }
    os << ']';
    o.key("max_throttle_factor");
    number(os, r.max_throttle_factor);
    o.key("throttle_adjustments") << r.throttle_adjustments;
  }

  o.key("per_node") << '[';
  for (std::size_t n = 0; n < r.per_node.size(); ++n) {
    const auto& nb = r.per_node[n];
    if (n != 0) os << ", ";
    os << "{\"node\": " << nb.node << ", \"app_cpu_us\": ";
    number(os, nb.app_cpu_us);
    os << ", \"pd_cpu_us\": ";
    number(os, nb.pd_cpu_us);
    os << ", \"pvmd_cpu_us\": ";
    number(os, nb.pvmd_cpu_us);
    os << ", \"other_cpu_us\": ";
    number(os, nb.other_cpu_us);
    os << ", \"main_cpu_us\": ";
    number(os, nb.main_cpu_us);
    os << '}';
  }
  os << ']';
  o.close();
}

void write_report_json(std::ostream& os, const obs::ReproStamp& stamp,
                       const std::vector<rocc::SimulationResult>& results,
                       const RunReport* report, const obs::ProfileReport* profile) {
  Obj doc(os, 0);

  doc.key("stamp");
  {
    Obj s(os, 2);
    s.key("tool");
    quoted(os, stamp.tool);
    if (!stamp.config.empty()) {
      s.key("config");
      quoted(os, stamp.config);
    }
    if (stamp.has_seed) s.key("seed") << stamp.seed;
    if (stamp.jobs != 0) s.key("jobs") << stamp.jobs;
    if (!stamp.extra.empty()) {
      s.key("extra");
      quoted(os, stamp.extra);
    }
    s.key("git");
    quoted(os, obs::git_describe());
    s.close();
  }

  doc.key("results") << "[\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    os << "    ";
    write_result_json(os, results[i], 4);
    if (i + 1 < results.size()) os << ',';
    os << '\n';
  }
  os << "  ]";

  if (report != nullptr) {
    doc.key("parallel");
    Obj p(os, 2);
    p.key("jobs") << report->jobs;
    p.key("runs") << report->runs;
    p.key("wall_sec");
    number(os, report->wall_sec);
    p.key("cpu_sec");
    number(os, report->cpu_sec);
    p.key("serial_estimate_sec");
    number(os, report->serial_estimate_sec);
    p.key("speedup_estimate");
    number(os, report->speedup_estimate());
    p.key("events") << report->events;
    p.close();
  }

  // Emitted only under --profile, so profiling-off reports stay
  // byte-identical to the pre-profiler format.
  if (profile != nullptr) {
    doc.key("bottlenecks") << "[";
    for (std::size_t i = 0; i < profile->hypotheses.size(); ++i) {
      os << (i > 0 ? "," : "") << "\n    ";
      const obs::HypothesisFinding& f = profile->hypotheses[i];
      Obj hyp(os, 4);
      hyp.key("hypothesis");
      quoted(os, f.name);
      hyp.key("target");
      quoted(os, f.target);
      hyp.key("hop");
      if (f.hop >= 0) {
        quoted(os, obs::hop_name(f.hop));
      } else {
        os << "null";
      }
      hyp.key("held") << (f.held ? "true" : "false");
      if (f.held) {
        number(hyp.key("first_held_start_us"), f.first_held_start_us);
        number(hyp.key("first_held_end_us"), f.first_held_end_us);
        number(hyp.key("peak"), f.peak);
        number(hyp.key("windows_held"), static_cast<double>(f.windows_held));
      }
      hyp.close();
    }
    os << "\n  ]";
    doc.key("dominant_hop");
    if (profile->dominant_hop >= 0) {
      quoted(os, obs::hop_name(profile->dominant_hop));
    } else {
      os << "null";
    }
  }

  doc.close();
  os << '\n';
}

void write_metrics_json(std::ostream& os, const obs::MetricsRegistry& metrics) {
  Obj doc(os, 0);

  doc.key("histograms") << "{";
  bool first_hist = true;
  metrics.for_each_histogram([&](const std::string& name, const obs::Histogram& h) {
    os << (first_hist ? "" : ",") << "\n    ";
    first_hist = false;
    quoted(os, name);
    os << ": ";
    Obj hist(os, 4);
    hist.key("count") << h.count();
    number(hist.key("mean"), h.mean());
    number(hist.key("min"), h.min());
    number(hist.key("p50"), h.percentile(0.50));
    number(hist.key("p90"), h.percentile(0.90));
    number(hist.key("p99"), h.percentile(0.99));
    number(hist.key("max"), h.max());
    hist.close();
  });
  os << (first_hist ? "}" : "\n  }");

  doc.key("columns") << "[";
  const auto& columns = metrics.column_names();
  for (std::size_t i = 0; i < columns.size(); ++i) {
    os << (i > 0 ? ", " : "");
    quoted(os, columns[i]);
  }
  os << "]";

  doc.key("rows") << "[";
  for (std::size_t i = 0; i < metrics.rows(); ++i) {
    const auto [t, values] = metrics.row(i);
    os << (i > 0 ? "," : "") << "\n    [";
    number(os, t);
    for (const double v : *values) {
      os << ", ";
      number(os, v);
    }
    os << "]";
  }
  os << (metrics.rows() == 0 ? "]" : "\n  ]");

  doc.close();
  os << '\n';
}

}  // namespace paradyn::experiments
