// Replication and 2^k r factorial runners coupling the ROCC simulator to
// the statistics library (Section 4.1 of the paper).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "experiments/parallel.hpp"
#include "rocc/simulation.hpp"
#include "stats/confidence.hpp"
#include "stats/factorial.hpp"

namespace paradyn::experiments {

/// Extracts one scalar metric from a finished simulation.
using MetricFn = std::function<double(const rocc::SimulationResult&)>;

/// A set of independent replications of one configuration.
class ReplicationSet {
 public:
  /// Run `replications` simulations (seeds seed, seed+1, ...) across `jobs`
  /// worker threads (0 = the process-wide default_jobs(), 1 = serial).
  /// Results are bit-identical for every job count.  `hook` (optional) is
  /// applied to every Simulation before it runs — the observability path
  /// for attaching tracers/metrics; it must be thread-safe for jobs > 1.
  ReplicationSet(const rocc::SystemConfig& config, std::size_t replications,
                 std::size_t jobs = 0, RunHook hook = {});

  /// Confidence interval of a metric over the replications (the paper uses
  /// 90% intervals).  With a single replication there is no dispersion
  /// estimate, so the interval degenerates to half_width = 0 around the one
  /// observation.
  [[nodiscard]] stats::ConfidenceInterval metric(const MetricFn& fn, double level = 0.90) const;

  /// Plain mean of a metric.
  [[nodiscard]] double mean(const MetricFn& fn) const;

  [[nodiscard]] const std::vector<rocc::SimulationResult>& results() const noexcept {
    return results_;
  }

  /// Wall/CPU accounting for the runs (for the tools' stderr report).
  [[nodiscard]] const RunReport& report() const noexcept { return report_; }

 private:
  std::vector<rocc::SimulationResult> results_;
  RunReport report_;
};

/// One two-level factor of a factorial experiment: a name plus a mutator
/// that sets the configuration to the factor's low or high level.
struct Factor {
  std::string name;
  std::string low_label;
  std::string high_label;
  std::function<void(rocc::SystemConfig&, bool high)> apply;
};

/// Raw responses of one factorial cell (used to print Tables 4-6).
struct FactorialCell {
  unsigned mask = 0;                          ///< Bit i set = factor i high.
  rocc::SystemConfig config;                  ///< The fully-applied config.
  std::vector<rocc::SimulationResult> runs;   ///< r replications.

  [[nodiscard]] double mean(const MetricFn& fn) const;
};

/// Complete 2^k r factorial experiment over the simulator.
class FactorialExperiment {
 public:
  /// Runs all 2^k cells with `replications` runs each, fanned out over
  /// `jobs` worker threads (0 = default_jobs(), 1 = serial).  Every cell
  /// rep uses seed base.seed + rep so paired comparisons share random
  /// streams; results are bit-identical for every job count.  `hook`
  /// (optional) is applied to every Simulation before it runs; it must be
  /// thread-safe for jobs > 1.
  FactorialExperiment(rocc::SystemConfig base, std::vector<Factor> factors,
                      std::size_t replications, std::size_t jobs = 0, RunHook hook = {});

  [[nodiscard]] const std::vector<FactorialCell>& cells() const noexcept { return cells_; }
  [[nodiscard]] const std::vector<Factor>& factors() const noexcept { return factors_; }
  [[nodiscard]] std::size_t replications() const noexcept { return replications_; }

  /// Allocation-of-variation analysis for one response metric — the
  /// paper's "principal component analysis" of Figures 16/20/25.
  [[nodiscard]] stats::FactorialAnalysis analyze(const MetricFn& fn) const;

  /// Wall/CPU accounting for the runs (for the tools' stderr report).
  [[nodiscard]] const RunReport& report() const noexcept { return report_; }

 private:
  std::vector<Factor> factors_;
  std::size_t replications_;
  std::vector<FactorialCell> cells_;
  RunReport report_;
};

// Commonly used metric extractors.
[[nodiscard]] inline double pd_cpu_time_sec(const rocc::SimulationResult& r) {
  return r.pd_cpu_time_sec();
}
[[nodiscard]] inline double is_cpu_time_sec(const rocc::SimulationResult& r) {
  return (r.pd_cpu_time_per_node_us + r.main_cpu_time_us / (r.nodes * r.cpus_per_node)) / 1e6;
}
[[nodiscard]] inline double latency_ms(const rocc::SimulationResult& r) {
  return r.latency_sec() * 1e3;
}
[[nodiscard]] inline double throughput(const rocc::SimulationResult& r) {
  return r.throughput_samples_per_sec;
}

}  // namespace paradyn::experiments
