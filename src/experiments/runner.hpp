// Replication and 2^k r factorial runners coupling the ROCC simulator to
// the statistics library (Section 4.1 of the paper).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "rocc/simulation.hpp"
#include "stats/confidence.hpp"
#include "stats/factorial.hpp"

namespace paradyn::experiments {

/// Extracts one scalar metric from a finished simulation.
using MetricFn = std::function<double(const rocc::SimulationResult&)>;

/// A set of independent replications of one configuration.
class ReplicationSet {
 public:
  /// Run `replications` simulations (seeds seed, seed+1, ...).
  ReplicationSet(const rocc::SystemConfig& config, std::size_t replications);

  /// Confidence interval of a metric over the replications (the paper uses
  /// 90% intervals).
  [[nodiscard]] stats::ConfidenceInterval metric(const MetricFn& fn, double level = 0.90) const;

  /// Plain mean of a metric.
  [[nodiscard]] double mean(const MetricFn& fn) const;

  [[nodiscard]] const std::vector<rocc::SimulationResult>& results() const noexcept {
    return results_;
  }

 private:
  std::vector<rocc::SimulationResult> results_;
};

/// One two-level factor of a factorial experiment: a name plus a mutator
/// that sets the configuration to the factor's low or high level.
struct Factor {
  std::string name;
  std::string low_label;
  std::string high_label;
  std::function<void(rocc::SystemConfig&, bool high)> apply;
};

/// Raw responses of one factorial cell (used to print Tables 4-6).
struct FactorialCell {
  unsigned mask = 0;                          ///< Bit i set = factor i high.
  rocc::SystemConfig config;                  ///< The fully-applied config.
  std::vector<rocc::SimulationResult> runs;   ///< r replications.

  [[nodiscard]] double mean(const MetricFn& fn) const;
};

/// Complete 2^k r factorial experiment over the simulator.
class FactorialExperiment {
 public:
  /// Runs all 2^k cells with `replications` runs each.  Every cell rep uses
  /// seed base.seed + rep so paired comparisons share random streams.
  FactorialExperiment(rocc::SystemConfig base, std::vector<Factor> factors,
                      std::size_t replications);

  [[nodiscard]] const std::vector<FactorialCell>& cells() const noexcept { return cells_; }
  [[nodiscard]] const std::vector<Factor>& factors() const noexcept { return factors_; }
  [[nodiscard]] std::size_t replications() const noexcept { return replications_; }

  /// Allocation-of-variation analysis for one response metric — the
  /// paper's "principal component analysis" of Figures 16/20/25.
  [[nodiscard]] stats::FactorialAnalysis analyze(const MetricFn& fn) const;

 private:
  std::vector<Factor> factors_;
  std::size_t replications_;
  std::vector<FactorialCell> cells_;
};

// Commonly used metric extractors.
[[nodiscard]] inline double pd_cpu_time_sec(const rocc::SimulationResult& r) {
  return r.pd_cpu_time_sec();
}
[[nodiscard]] inline double is_cpu_time_sec(const rocc::SimulationResult& r) {
  return (r.pd_cpu_time_per_node_us + r.main_cpu_time_us / (r.nodes * r.cpus_per_node)) / 1e6;
}
[[nodiscard]] inline double latency_ms(const rocc::SimulationResult& r) {
  return r.latency_sec() * 1e3;
}
[[nodiscard]] inline double throughput(const rocc::SimulationResult& r) {
  return r.throughput_samples_per_sec;
}

}  // namespace paradyn::experiments
