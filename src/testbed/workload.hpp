// Synthetic NAS-like application workloads for the testbed.
//
// The paper's testing experiments run two NAS benchmarks under the real IS:
//   * pvmbt — solves three sets of uncoupled block-tridiagonal systems with
//     5x5 blocks, sweeping the x, y, and z directions;
//   * pvmis — an integer sort kernel.
// BtWorkload and IsWorkload reproduce those benchmarks' dominant inner
// loops so the testbed exercises the IS under the same two CPU profiles
// (dense floating-point vs integer/memory traffic).
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace paradyn::testbed {

/// A CPU-bound application kernel executed in small chunks so the
/// instrumentation timer can interleave sampling with computation.
class Workload {
 public:
  virtual ~Workload() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Run one unit of work (roughly 100 us - 1 ms of CPU).  Returns a
  /// checksum-ish value so the work cannot be optimized away.
  virtual double run_chunk() = 0;

  /// Chunks completed so far.
  [[nodiscard]] std::uint64_t chunks_done() const noexcept { return chunks_; }

 protected:
  std::uint64_t chunks_ = 0;
};

/// Block-tridiagonal solver (pvmbt-like): per chunk, forward-eliminate and
/// back-substitute a line of N cells with 5x5 blocks, cycling through the
/// x, y, and z directions.
class BtWorkload final : public Workload {
 public:
  explicit BtWorkload(std::size_t line_length = 64);

  [[nodiscard]] std::string name() const override { return "bt"; }
  double run_chunk() override;

  /// Enable residual verification: each chunk also computes
  /// ||A x - b||_inf against a saved copy of the system (testing hook;
  /// roughly doubles the memory traffic).
  void enable_residual_check(bool on) { check_residual_ = on; }
  /// Residual of the most recent solve (0 until a checked chunk ran).
  [[nodiscard]] double last_residual() const noexcept { return last_residual_; }

 private:
  using Block = std::array<double, 25>;   // 5x5, row-major
  using Vec5 = std::array<double, 5>;

  static void block_mul_vec(const Block& m, const Vec5& v, Vec5& out);
  static void block_mul(const Block& a, const Block& b, Block& out);
  /// Invert a 5x5 block by Gauss-Jordan with partial pivoting.
  static Block block_inverse(Block m);

  void solve_line();

  std::size_t n_;
  int direction_ = 0;  // cycles x, y, z
  std::vector<Block> lower_, diag_, upper_;
  std::vector<Vec5> rhs_;
  std::uint64_t rng_state_;
  bool check_residual_ = false;
  double last_residual_ = 0.0;
  std::vector<Block> saved_lower_, saved_diag_, saved_upper_;
  std::vector<Vec5> saved_rhs_;
};

/// Integer sort (pvmis-like): per chunk, generate keys and rank them with a
/// counting sort, as in the NAS IS kernel.
class IsWorkload final : public Workload {
 public:
  explicit IsWorkload(std::size_t keys_per_chunk = 1 << 12, std::int32_t max_key = 1 << 11);

  [[nodiscard]] std::string name() const override { return "is"; }
  double run_chunk() override;

 private:
  std::size_t num_keys_;
  std::int32_t max_key_;
  std::vector<std::int32_t> keys_;
  std::vector<std::int32_t> counts_;
  std::vector<std::int32_t> ranks_;
  std::uint64_t rng_state_;
};

/// Factory by benchmark name ("bt" or "is"); throws on unknown names.
[[nodiscard]] std::unique_ptr<Workload> make_workload(const std::string& name);

}  // namespace paradyn::testbed
