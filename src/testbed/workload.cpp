#include "testbed/workload.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace paradyn::testbed {
namespace {

/// SplitMix64 step (local copy to keep the testbed dependency-free).
std::uint64_t mix(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

double unit_double(std::uint64_t& state) {
  return static_cast<double>(mix(state) >> 11U) * 0x1.0p-53;
}

}  // namespace

// ----------------------------------------------------------------- BtWorkload

BtWorkload::BtWorkload(std::size_t line_length) : n_(line_length), rng_state_(0x42) {
  if (n_ < 2) throw std::invalid_argument("BtWorkload: line_length must be >= 2");
  lower_.resize(n_);
  diag_.resize(n_);
  upper_.resize(n_);
  rhs_.resize(n_);
}

void BtWorkload::block_mul_vec(const Block& m, const Vec5& v, Vec5& out) {
  for (int r = 0; r < 5; ++r) {
    double acc = 0.0;
    for (int c = 0; c < 5; ++c) acc += m[static_cast<std::size_t>(r * 5 + c)] * v[static_cast<std::size_t>(c)];
    out[static_cast<std::size_t>(r)] = acc;
  }
}

void BtWorkload::block_mul(const Block& a, const Block& b, Block& out) {
  for (int r = 0; r < 5; ++r) {
    for (int c = 0; c < 5; ++c) {
      double acc = 0.0;
      for (int k = 0; k < 5; ++k) {
        acc += a[static_cast<std::size_t>(r * 5 + k)] * b[static_cast<std::size_t>(k * 5 + c)];
      }
      out[static_cast<std::size_t>(r * 5 + c)] = acc;
    }
  }
}

BtWorkload::Block BtWorkload::block_inverse(Block m) {
  Block inv{};
  for (int i = 0; i < 5; ++i) inv[static_cast<std::size_t>(i * 5 + i)] = 1.0;
  for (int col = 0; col < 5; ++col) {
    // Partial pivot.
    int pivot = col;
    for (int r = col + 1; r < 5; ++r) {
      if (std::fabs(m[static_cast<std::size_t>(r * 5 + col)]) >
          std::fabs(m[static_cast<std::size_t>(pivot * 5 + col)])) {
        pivot = r;
      }
    }
    if (pivot != col) {
      for (int c = 0; c < 5; ++c) {
        std::swap(m[static_cast<std::size_t>(pivot * 5 + c)], m[static_cast<std::size_t>(col * 5 + c)]);
        std::swap(inv[static_cast<std::size_t>(pivot * 5 + c)], inv[static_cast<std::size_t>(col * 5 + c)]);
      }
    }
    const double d = m[static_cast<std::size_t>(col * 5 + col)];
    const double scale = 1.0 / d;
    for (int c = 0; c < 5; ++c) {
      m[static_cast<std::size_t>(col * 5 + c)] *= scale;
      inv[static_cast<std::size_t>(col * 5 + c)] *= scale;
    }
    for (int r = 0; r < 5; ++r) {
      if (r == col) continue;
      const double f = m[static_cast<std::size_t>(r * 5 + col)];
      if (f == 0.0) continue;
      for (int c = 0; c < 5; ++c) {
        m[static_cast<std::size_t>(r * 5 + c)] -= f * m[static_cast<std::size_t>(col * 5 + c)];
        inv[static_cast<std::size_t>(r * 5 + c)] -= f * inv[static_cast<std::size_t>(col * 5 + c)];
      }
    }
  }
  return inv;
}

void BtWorkload::solve_line() {
  // Fill a diagonally dominant block-tridiagonal system.
  for (std::size_t i = 0; i < n_; ++i) {
    for (int k = 0; k < 25; ++k) {
      lower_[i][static_cast<std::size_t>(k)] = 0.1 * unit_double(rng_state_);
      upper_[i][static_cast<std::size_t>(k)] = 0.1 * unit_double(rng_state_);
      diag_[i][static_cast<std::size_t>(k)] = 0.2 * unit_double(rng_state_);
    }
    for (int k = 0; k < 5; ++k) {
      diag_[i][static_cast<std::size_t>(k * 5 + k)] += 5.0;  // dominance
      rhs_[i][static_cast<std::size_t>(k)] = unit_double(rng_state_);
    }
  }
  if (check_residual_) {
    saved_lower_ = lower_;
    saved_diag_ = diag_;
    saved_upper_ = upper_;
    saved_rhs_ = rhs_;
  }

  // Block Thomas algorithm: forward elimination ...
  Block inv = block_inverse(diag_[0]);
  Block tmp{};
  Vec5 vtmp{};
  for (std::size_t i = 1; i < n_; ++i) {
    // diag[i] -= lower[i] * inv(diag[i-1]) * upper[i-1]
    block_mul(lower_[i], inv, tmp);
    Block correction{};
    block_mul(tmp, upper_[i - 1], correction);
    for (int k = 0; k < 25; ++k) diag_[i][static_cast<std::size_t>(k)] -= correction[static_cast<std::size_t>(k)];
    // rhs[i] -= lower[i] * inv(diag[i-1]) * rhs[i-1]
    block_mul_vec(tmp, rhs_[i - 1], vtmp);
    for (int k = 0; k < 5; ++k) rhs_[i][static_cast<std::size_t>(k)] -= vtmp[static_cast<std::size_t>(k)];
    inv = block_inverse(diag_[i]);
  }
  // ... and back substitution.
  block_mul_vec(inv, rhs_[n_ - 1], vtmp);
  rhs_[n_ - 1] = vtmp;
  for (std::size_t i = n_ - 1; i-- > 0;) {
    Vec5 uxi{};
    block_mul_vec(upper_[i], rhs_[i + 1], uxi);
    for (int k = 0; k < 5; ++k) rhs_[i][static_cast<std::size_t>(k)] -= uxi[static_cast<std::size_t>(k)];
    const Block di = block_inverse(diag_[i]);
    block_mul_vec(di, rhs_[i], vtmp);
    rhs_[i] = vtmp;
  }
}

double BtWorkload::run_chunk() {
  solve_line();
  if (check_residual_) {
    // rhs_ now holds the solution x; verify ||A x - b||_inf row by row.
    double worst = 0.0;
    Vec5 acc{};
    Vec5 term{};
    for (std::size_t i = 0; i < n_; ++i) {
      block_mul_vec(saved_diag_[i], rhs_[i], acc);
      if (i > 0) {
        block_mul_vec(saved_lower_[i], rhs_[i - 1], term);
        for (int k = 0; k < 5; ++k) acc[static_cast<std::size_t>(k)] += term[static_cast<std::size_t>(k)];
      }
      if (i + 1 < n_) {
        block_mul_vec(saved_upper_[i], rhs_[i + 1], term);
        for (int k = 0; k < 5; ++k) acc[static_cast<std::size_t>(k)] += term[static_cast<std::size_t>(k)];
      }
      for (int k = 0; k < 5; ++k) {
        worst = std::max(worst, std::fabs(acc[static_cast<std::size_t>(k)] -
                                          saved_rhs_[i][static_cast<std::size_t>(k)]));
      }
    }
    last_residual_ = worst;
  }
  direction_ = (direction_ + 1) % 3;  // x, y, z sweeps of pvmbt
  ++chunks_;
  double checksum = 0.0;
  for (int k = 0; k < 5; ++k) checksum += rhs_[0][static_cast<std::size_t>(k)];
  return checksum;
}

// ----------------------------------------------------------------- IsWorkload

IsWorkload::IsWorkload(std::size_t keys_per_chunk, std::int32_t max_key)
    : num_keys_(keys_per_chunk), max_key_(max_key), rng_state_(0x1517) {
  if (num_keys_ == 0) throw std::invalid_argument("IsWorkload: keys_per_chunk must be > 0");
  if (max_key_ <= 0) throw std::invalid_argument("IsWorkload: max_key must be > 0");
  keys_.resize(num_keys_);
  counts_.resize(static_cast<std::size_t>(max_key_));
  ranks_.resize(num_keys_);
}

double IsWorkload::run_chunk() {
  // Key generation (NAS IS uses a near-Gaussian distribution; a sum of two
  // uniforms gives the triangular approximation that exercises the same
  // counting-sort behavior).
  for (auto& k : keys_) {
    const auto a = static_cast<std::int32_t>(mix(rng_state_) % static_cast<std::uint64_t>(max_key_));
    const auto b = static_cast<std::int32_t>(mix(rng_state_) % static_cast<std::uint64_t>(max_key_));
    k = (a + b) / 2;
  }
  // Counting sort ranking.
  std::fill(counts_.begin(), counts_.end(), 0);
  for (const auto k : keys_) ++counts_[static_cast<std::size_t>(k)];
  for (std::size_t i = 1; i < counts_.size(); ++i) counts_[i] += counts_[i - 1];
  for (std::size_t i = num_keys_; i-- > 0;) {
    ranks_[static_cast<std::size_t>(--counts_[static_cast<std::size_t>(keys_[i])])] =
        static_cast<std::int32_t>(i);
  }
  ++chunks_;
  return static_cast<double>(ranks_[0] + ranks_[num_keys_ / 2]);
}

std::unique_ptr<Workload> make_workload(const std::string& name) {
  if (name == "bt") return std::make_unique<BtWorkload>();
  if (name == "is") return std::make_unique<IsWorkload>();
  throw std::invalid_argument("make_workload: unknown workload " + name);
}

}  // namespace paradyn::testbed
