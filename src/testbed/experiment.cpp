#include "testbed/experiment.hpp"

#include <poll.h>

#include <atomic>
#include <cerrno>
#include <system_error>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include "testbed/channel.hpp"
#include "testbed/cpu_timer.hpp"
#include "testbed/workload.hpp"

namespace paradyn::testbed {
namespace {

/// Application thread: run the kernel, emit samples every period.
void app_main(const TestbedConfig& cfg, int app_id, SampleChannel& to_daemon,
              std::atomic<bool>& stop_flag, double& cpu_out, std::uint64_t& sent_out,
              std::uint64_t& chunks_out) {
  const auto workload = make_workload(cfg.workload);
  const long long period_ns = static_cast<long long>(cfg.sampling_period_ms * 1e6);
  long long next_tick = monotonic_ns() + period_ns;
  std::uint64_t sent = 0;
  double sink = 0.0;

  while (!stop_flag.load(std::memory_order_relaxed)) {
    sink += workload->run_chunk();
    const long long now = monotonic_ns();
    if (now >= next_tick) {
      // Instrumentation fires: one sample per enabled metric, emitted as a
      // single block per sampling interval (as Paradyn's shared-memory
      // sampling does).  The CF/BF choice below is purely about how the
      // *daemon* forwards these samples to the main process.
      std::vector<WireSample> tick(static_cast<std::size_t>(cfg.metrics_per_sample));
      for (int m = 0; m < cfg.metrics_per_sample; ++m) {
        auto& s = tick[static_cast<std::size_t>(m)];
        s.generated_ns = monotonic_ns();
        s.app_id = app_id;
        s.metric_id = m;
        s.value = sink;
      }
      to_daemon.write_batch(tick);
      sent += tick.size();
      next_tick += period_ns;
      if (next_tick < now) next_tick = now + period_ns;  // missed ticks: realign
    }
  }
  chunks_out = workload->chunks_done();
  sent_out = sent;
  cpu_out = thread_cpu_seconds();
  to_daemon.close_write();
}

/// Daemon thread: drain app pipes, forward under CF or BF.
void daemon_main(const TestbedConfig& cfg, std::vector<SampleChannel*> from_apps,
                 SampleChannel& to_collector, double& cpu_out, std::uint64_t& syscalls_out) {
  std::vector<WireSample> batch;
  batch.reserve(static_cast<std::size_t>(cfg.batch_size));
  std::uint64_t forwards = 0;

  const auto flush = [&] {
    if (batch.empty()) return;
    to_collector.write_batch(batch);  // one write(2), CF or BF alike
    ++forwards;
    batch.clear();
  };

  std::vector<pollfd> fds(from_apps.size());
  std::vector<bool> open(from_apps.size(), true);
  std::size_t open_count = from_apps.size();

  while (open_count > 0) {
    for (std::size_t i = 0; i < from_apps.size(); ++i) {
      fds[i].fd = open[i] ? from_apps[i]->read_fd() : -1;
      fds[i].events = POLLIN;
      fds[i].revents = 0;
    }
    if (::poll(fds.data(), fds.size(), -1) < 0) {
      if (errno == EINTR) continue;
      throw std::system_error(errno, std::generic_category(), "poll");
    }
    for (std::size_t i = 0; i < from_apps.size(); ++i) {
      if (!open[i] || (fds[i].revents & (POLLIN | POLLHUP)) == 0) continue;
      // Drain in bulk: the daemon reads whatever the pipe holds (one read
      // system call), as the real Pd does.  The CF/BF difference lies
      // entirely in the number of forwarding writes below.
      const auto samples = from_apps[i]->read_some(64);
      if (samples.empty()) {
        open[i] = false;
        --open_count;
        continue;
      }
      for (const auto& sample : samples) {
        batch.push_back(sample);
        if (static_cast<int>(batch.size()) >= cfg.batch_size) flush();
      }
    }
  }
  flush();  // partial batch at shutdown
  syscalls_out = forwards;
  cpu_out = thread_cpu_seconds();
  to_collector.close_write();
}

/// Collector thread ("main Paradyn"): receive from all daemons, timestamp,
/// aggregate.
void collector_main(std::vector<SampleChannel*> from_daemons, double& cpu_out,
                    std::uint64_t& received_out, stats::SummaryStats& latency_out) {
  std::uint64_t received = 0;
  stats::SummaryStats latency;
  double aggregate = 0.0;

  std::vector<pollfd> fds(from_daemons.size());
  std::vector<bool> open(from_daemons.size(), true);
  std::size_t open_count = from_daemons.size();

  while (open_count > 0) {
    for (std::size_t i = 0; i < from_daemons.size(); ++i) {
      fds[i].fd = open[i] ? from_daemons[i]->read_fd() : -1;
      fds[i].events = POLLIN;
      fds[i].revents = 0;
    }
    if (::poll(fds.data(), fds.size(), -1) < 0) {
      if (errno == EINTR) continue;
      throw std::system_error(errno, std::generic_category(), "poll");
    }
    for (std::size_t i = 0; i < from_daemons.size(); ++i) {
      if (!open[i] || (fds[i].revents & (POLLIN | POLLHUP)) == 0) continue;
      const auto samples = from_daemons[i]->read_some(256);
      if (samples.empty()) {
        open[i] = false;
        --open_count;
        continue;
      }
      const long long now = monotonic_ns();
      for (const auto& s : samples) {
        latency.add(static_cast<double>(now - s.generated_ns) / 1e6);
        aggregate += s.value;  // Data Manager folds samples into time series
        ++received;
      }
    }
  }
  (void)aggregate;
  received_out = received;
  latency_out = latency;
  cpu_out = thread_cpu_seconds();
}

}  // namespace

void TestbedConfig::validate() const {
  if (workload != "bt" && workload != "is") {
    throw std::invalid_argument("TestbedConfig: workload must be 'bt' or 'is'");
  }
  if (!(duration_sec > 0.0)) throw std::invalid_argument("TestbedConfig: duration_sec > 0");
  if (!(sampling_period_ms > 0.0)) {
    throw std::invalid_argument("TestbedConfig: sampling_period_ms > 0");
  }
  if (metrics_per_sample <= 0) {
    throw std::invalid_argument("TestbedConfig: metrics_per_sample > 0");
  }
  if (batch_size <= 0) throw std::invalid_argument("TestbedConfig: batch_size > 0");
  if (app_threads <= 0) throw std::invalid_argument("TestbedConfig: app_threads > 0");
  if (daemon_threads <= 0 || daemon_threads > app_threads) {
    throw std::invalid_argument("TestbedConfig: daemon_threads must be in [1, app_threads]");
  }
}

double TestbedResult::normalized_daemon_pct() const {
  const double total = total_cpu_sec();
  return total > 0.0 ? 100.0 * daemon_cpu_sec / total : 0.0;
}

double TestbedResult::normalized_collector_pct() const {
  const double total = total_cpu_sec();
  return total > 0.0 ? 100.0 * collector_cpu_sec / total : 0.0;
}

TestbedResult run_testbed(const TestbedConfig& config) {
  config.validate();
  TestbedResult result;

  const auto num_daemons = static_cast<std::size_t>(config.daemon_threads);
  std::vector<std::unique_ptr<SampleChannel>> app_channels;
  for (int i = 0; i < config.app_threads; ++i) {
    app_channels.push_back(std::make_unique<SampleChannel>());
  }
  // Apps are assigned to daemons round-robin (one Pd per node, Figure 29).
  std::vector<std::vector<SampleChannel*>> daemon_inputs(num_daemons);
  for (int i = 0; i < config.app_threads; ++i) {
    daemon_inputs[static_cast<std::size_t>(i) % num_daemons].push_back(
        app_channels[static_cast<std::size_t>(i)].get());
  }
  std::vector<std::unique_ptr<SampleChannel>> daemon_channels;
  std::vector<SampleChannel*> collector_inputs;
  for (std::size_t d = 0; d < num_daemons; ++d) {
    daemon_channels.push_back(std::make_unique<SampleChannel>());
    collector_inputs.push_back(daemon_channels.back().get());
  }

  std::atomic<bool> stop{false};
  std::vector<double> app_cpu(static_cast<std::size_t>(config.app_threads), 0.0);
  std::vector<std::uint64_t> app_sent(static_cast<std::size_t>(config.app_threads), 0);
  std::vector<std::uint64_t> app_chunks(static_cast<std::size_t>(config.app_threads), 0);
  std::vector<double> daemon_cpu(num_daemons, 0.0);
  std::vector<std::uint64_t> daemon_syscalls(num_daemons, 0);

  std::vector<std::thread> apps;
  for (int i = 0; i < config.app_threads; ++i) {
    const auto idx = static_cast<std::size_t>(i);
    apps.emplace_back(app_main, std::cref(config), i, std::ref(*app_channels[idx]),
                      std::ref(stop), std::ref(app_cpu[idx]), std::ref(app_sent[idx]),
                      std::ref(app_chunks[idx]));
  }
  std::vector<std::thread> daemons;
  for (std::size_t d = 0; d < num_daemons; ++d) {
    daemons.emplace_back(daemon_main, std::cref(config), daemon_inputs[d],
                         std::ref(*daemon_channels[d]), std::ref(daemon_cpu[d]),
                         std::ref(daemon_syscalls[d]));
  }
  std::thread collector(collector_main, collector_inputs, std::ref(result.collector_cpu_sec),
                        std::ref(result.samples_received), std::ref(result.latency_ms));

  std::this_thread::sleep_for(std::chrono::duration<double>(config.duration_sec));
  stop.store(true, std::memory_order_relaxed);

  for (auto& t : apps) t.join();
  for (auto& t : daemons) t.join();
  collector.join();

  for (std::size_t d = 0; d < num_daemons; ++d) {
    result.daemon_cpu_sec += daemon_cpu[d];
    result.forward_syscalls += daemon_syscalls[d];
  }

  for (int i = 0; i < config.app_threads; ++i) {
    const auto idx = static_cast<std::size_t>(i);
    result.app_cpu_sec += app_cpu[idx];
    result.samples_sent += app_sent[idx];
    result.app_chunks += app_chunks[idx];
  }
  return result;
}

}  // namespace paradyn::testbed
