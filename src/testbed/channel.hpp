// RAII POSIX pipe carrying fixed-size instrumentation samples.
//
// This is the real counterpart of the simulator's Pipe: the kernel buffer
// between an instrumented application and its Paradyn daemon, and between
// the daemon and the collector.  Writes block when the pipe is full (the
// backpressure the paper observes at small sampling periods); reads block
// until data or EOF.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

namespace paradyn::testbed {

/// One instrumentation sample on the wire (fixed 24-byte record).
struct WireSample {
  std::int64_t generated_ns = 0;  ///< monotonic_ns() at generation time.
  std::int32_t app_id = 0;
  std::int32_t metric_id = 0;
  double value = 0.0;
};
static_assert(sizeof(WireSample) == 24, "wire format must be stable");

/// A unidirectional sample channel over a pipe(2).
class SampleChannel {
 public:
  /// Creates the pipe; throws std::system_error on failure.
  SampleChannel();
  ~SampleChannel();

  SampleChannel(const SampleChannel&) = delete;
  SampleChannel& operator=(const SampleChannel&) = delete;
  SampleChannel(SampleChannel&& other) noexcept;
  SampleChannel& operator=(SampleChannel&&) = delete;

  /// Write one sample (one write(2) system call — the CF policy's cost).
  void write_sample(const WireSample& sample);

  /// Write a whole batch with a single write(2) system call — the BF
  /// policy's amortization.
  void write_batch(std::span<const WireSample> batch);

  /// Blocking read of one sample; nullopt on EOF.  Short reads are
  /// completed internally (pipes may split records at any byte).
  [[nodiscard]] std::optional<WireSample> read_sample();

  /// Blocking read of up to `max` samples in one read(2) call; empty on
  /// EOF.  Used by the collector to drain batches.
  [[nodiscard]] std::vector<WireSample> read_some(std::size_t max);

  /// Close the write end (EOF for the reader).  Idempotent.
  void close_write();
  /// Close the read end.  Idempotent.
  void close_read();

  [[nodiscard]] int read_fd() const noexcept { return read_fd_; }
  [[nodiscard]] int write_fd() const noexcept { return write_fd_; }

 private:
  void write_all(const void* data, std::size_t len);
  [[nodiscard]] bool read_all(void* data, std::size_t len);

  int read_fd_ = -1;
  int write_fd_ = -1;
  std::vector<unsigned char> rx_partial_;  ///< carry-over for short reads
};

}  // namespace paradyn::testbed
