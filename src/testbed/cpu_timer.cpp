#include "testbed/cpu_timer.hpp"

namespace paradyn::testbed {

double thread_cpu_seconds() {
  timespec ts{};
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) + static_cast<double>(ts.tv_nsec) * 1e-9;
}

long long monotonic_ns() {
  timespec ts{};
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<long long>(ts.tv_sec) * 1'000'000'000LL + ts.tv_nsec;
}

}  // namespace paradyn::testbed
