#include "testbed/channel.hpp"

#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <system_error>
#include <utility>

namespace paradyn::testbed {

SampleChannel::SampleChannel() {
  int fds[2];
  if (::pipe(fds) != 0) {
    throw std::system_error(errno, std::generic_category(), "pipe");
  }
  read_fd_ = fds[0];
  write_fd_ = fds[1];
}

SampleChannel::SampleChannel(SampleChannel&& other) noexcept
    : read_fd_(std::exchange(other.read_fd_, -1)),
      write_fd_(std::exchange(other.write_fd_, -1)),
      rx_partial_(std::move(other.rx_partial_)) {}

SampleChannel::~SampleChannel() {
  close_write();
  close_read();
}

void SampleChannel::close_write() {
  if (write_fd_ != -1) {
    ::close(write_fd_);
    write_fd_ = -1;
  }
}

void SampleChannel::close_read() {
  if (read_fd_ != -1) {
    ::close(read_fd_);
    read_fd_ = -1;
  }
}

void SampleChannel::write_all(const void* data, std::size_t len) {
  const auto* p = static_cast<const unsigned char*>(data);
  while (len > 0) {
    const ssize_t n = ::write(write_fd_, p, len);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::system_error(errno, std::generic_category(), "write");
    }
    p += n;
    len -= static_cast<std::size_t>(n);
  }
}

void SampleChannel::write_sample(const WireSample& sample) {
  write_all(&sample, sizeof(sample));
}

void SampleChannel::write_batch(std::span<const WireSample> batch) {
  if (batch.empty()) return;
  write_all(batch.data(), batch.size_bytes());
}

bool SampleChannel::read_all(void* data, std::size_t len) {
  auto* p = static_cast<unsigned char*>(data);
  while (len > 0) {
    const ssize_t n = ::read(read_fd_, p, len);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::system_error(errno, std::generic_category(), "read");
    }
    if (n == 0) return false;  // EOF mid-record only legal at record start
    p += n;
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

std::optional<WireSample> SampleChannel::read_sample() {
  WireSample s;
  if (!read_all(&s, sizeof(s))) return std::nullopt;
  return s;
}

std::vector<WireSample> SampleChannel::read_some(std::size_t max) {
  if (max == 0) return {};
  std::vector<WireSample> out;
  std::vector<unsigned char> buffer(rx_partial_);
  rx_partial_.clear();
  buffer.resize(buffer.size() + max * sizeof(WireSample));

  const std::size_t preloaded = buffer.size() - max * sizeof(WireSample);
  ssize_t n = 0;
  while (true) {
    n = ::read(read_fd_, buffer.data() + preloaded, max * sizeof(WireSample));
    if (n >= 0) break;
    if (errno != EINTR) {
      throw std::system_error(errno, std::generic_category(), "read");
    }
  }
  const std::size_t have = preloaded + static_cast<std::size_t>(n);
  if (have == 0) return {};  // EOF with no carry-over

  const std::size_t whole = have / sizeof(WireSample);
  out.resize(whole);
  std::memcpy(out.data(), buffer.data(), whole * sizeof(WireSample));
  const std::size_t rest = have - whole * sizeof(WireSample);
  rx_partial_.assign(buffer.data() + whole * sizeof(WireSample),
                     buffer.data() + whole * sizeof(WireSample) + rest);
  if (whole == 0 && n > 0) return read_some(max);  // only a fragment arrived
  return out;
}

}  // namespace paradyn::testbed
