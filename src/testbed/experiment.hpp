// The testbed experiment driver (Section 5's measurement-based testing).
//
// Wires up a real mini instrumentation system on the host:
//
//   app thread(s)  --pipe-->  daemon thread  --pipe-->  collector thread
//
// The application thread runs a NAS-like kernel (bt or is) and, every
// sampling period, writes `metrics_per_sample` instrumentation samples into
// its pipe (Paradyn samples one value per enabled metric-focus pair).  The
// daemon drains the pipes and forwards to the collector under CF (one
// write(2) per sample) or BF (one write(2) per batch).  Per-thread CPU
// times are measured with CLOCK_THREAD_CPUTIME_ID, standing in for the
// paper's AIX trace analysis.
#pragma once

#include <cstdint>
#include <string>

#include "stats/summary.hpp"

namespace paradyn::testbed {

struct TestbedConfig {
  std::string workload = "bt";        ///< "bt" (pvmbt-like) or "is" (pvmis-like).
  double duration_sec = 1.0;          ///< Wall-clock run length.
  double sampling_period_ms = 10.0;   ///< Paper tests 10 and 30 ms.
  int metrics_per_sample = 50;        ///< Samples written per sampling tick.
  int batch_size = 1;                 ///< 1 == CF; >1 == BF.
  int app_threads = 1;
  /// Paradyn daemons; app threads are assigned round-robin (Figure 29: one
  /// Pd per node).  Must not exceed app_threads.
  int daemon_threads = 1;

  void validate() const;
};

struct TestbedResult {
  double app_cpu_sec = 0.0;        ///< Summed over app threads.
  double daemon_cpu_sec = 0.0;     ///< Summed over daemons (Figure 30a's "Pd CPU time").
  double collector_cpu_sec = 0.0;  ///< The "main Paradyn CPU time" of Figure 30b.
  std::uint64_t samples_sent = 0;
  std::uint64_t samples_received = 0;
  std::uint64_t forward_syscalls = 0;  ///< write(2) calls daemon -> collector.
  std::uint64_t app_chunks = 0;        ///< Workload progress (perturbation check).
  stats::SummaryStats latency_ms;      ///< Generation -> collector receipt.

  /// Daemon (or collector) CPU time normalized by the total measured CPU
  /// time, as in Figure 31.
  [[nodiscard]] double normalized_daemon_pct() const;
  [[nodiscard]] double normalized_collector_pct() const;
  [[nodiscard]] double total_cpu_sec() const {
    return app_cpu_sec + daemon_cpu_sec + collector_cpu_sec;
  }
};

/// Run one testbed experiment.  Spawns the threads, runs for
/// config.duration_sec, joins, and reports.  Throws on invalid config or
/// system errors.
[[nodiscard]] TestbedResult run_testbed(const TestbedConfig& config);

}  // namespace paradyn::testbed
