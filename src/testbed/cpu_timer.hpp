// Per-thread CPU time measurement for the testbed (Section 5).
//
// The paper derives its testing results from AIX trace files that attribute
// CPU time to the application, Paradyn daemon, and main Paradyn processes.
// We attribute CPU time with CLOCK_THREAD_CPUTIME_ID instead: each testbed
// thread reads its own consumed CPU time right before it exits.
#pragma once

#include <ctime>

namespace paradyn::testbed {

/// CPU seconds consumed by the calling thread so far.
[[nodiscard]] double thread_cpu_seconds();

/// Monotonic wall-clock nanoseconds (for latency timestamps).
[[nodiscard]] long long monotonic_ns();

}  // namespace paradyn::testbed
