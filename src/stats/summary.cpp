#include "stats/summary.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace paradyn::stats {

void SummaryStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void SummaryStats::merge(const SummaryStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double n_total = na + nb;
  mean_ += delta * nb / n_total;
  m2_ += other.m2_ + delta * delta * na * nb / n_total;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

double SummaryStats::variance() const noexcept {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double SummaryStats::stddev() const noexcept { return std::sqrt(variance()); }

SummaryStats summarize(std::span<const double> data) {
  SummaryStats s;
  for (const double x : data) s.add(x);
  return s;
}

Histogram::Histogram(double lo, double hi, std::size_t bins) : lo_(lo) {
  if (!(hi > lo)) throw std::invalid_argument("Histogram: hi must be > lo");
  if (bins == 0) throw std::invalid_argument("Histogram: bins must be > 0");
  width_ = (hi - lo) / static_cast<double>(bins);
  counts_.assign(bins, 0);
}

void Histogram::add(double x) noexcept {
  auto idx = static_cast<long>(std::floor((x - lo_) / width_));
  idx = std::clamp<long>(idx, 0, static_cast<long>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

void Histogram::add_all(std::span<const double> data) noexcept {
  for (const double x : data) add(x);
}

double Histogram::bin_center(std::size_t bin) const {
  if (bin >= counts_.size()) throw std::out_of_range("Histogram::bin_center");
  return lo_ + (static_cast<double>(bin) + 0.5) * width_;
}

double Histogram::density(std::size_t bin) const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(count(bin)) / (static_cast<double>(total_) * width_);
}

double empirical_quantile(std::span<const double> sorted, double p) {
  if (sorted.empty()) throw std::invalid_argument("empirical_quantile: empty data");
  if (!(p >= 0.0 && p <= 1.0)) throw std::invalid_argument("empirical_quantile: p in [0,1]");
  const double h = (static_cast<double>(sorted.size()) - 1.0) * p;
  const auto lo = static_cast<std::size_t>(std::floor(h));
  const auto hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = h - std::floor(h);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

std::vector<QQPoint> qq_plot(std::span<const double> data, const Distribution& dist,
                             std::size_t points) {
  if (data.empty()) throw std::invalid_argument("qq_plot: empty data");
  if (points == 0) throw std::invalid_argument("qq_plot: points must be > 0");
  std::vector<double> sorted(data.begin(), data.end());
  std::sort(sorted.begin(), sorted.end());
  std::vector<QQPoint> out;
  out.reserve(points);
  for (std::size_t i = 0; i < points; ++i) {
    const double p = (static_cast<double>(i) + 0.5) / static_cast<double>(points);
    out.push_back(QQPoint{dist.quantile(p), empirical_quantile(sorted, p)});
  }
  return out;
}

double qq_deviation(std::span<const QQPoint> points) {
  if (points.empty()) throw std::invalid_argument("qq_deviation: empty");
  double acc = 0.0;
  std::size_t used = 0;
  for (const auto& pt : points) {
    const double denom = std::max(std::fabs(pt.theoretical), 1e-12);
    acc += std::fabs(pt.observed - pt.theoretical) / denom;
    ++used;
  }
  return acc / static_cast<double>(used);
}

}  // namespace paradyn::stats
