// Per-site prefill buffers: event callbacks consume precomputed variates.
//
// Even with the batch ziggurat kernels, a hot site that draws one variate
// per event pays the per-call PCG + table-walk latency on the event path.
// BufferedSampler moves generation off that path: it owns a dedicated RNG
// sub-stream, refills a block of variates through FrozenSampler::fill()
// (the AVX2 batch kernels), and hands them out one load at a time.
//
// Determinism contract — the reason buffering is safe to enable across
// --jobs / --shards / either event queue:
//
//   * Each buffered site draws from its OWN named stream, derived from
//     (global seed, entity tag, site tag) exactly like every other stream
//     in the model.  Sites never share a buffered stream, so the k-th
//     variate a site consumes is the k-th draw of its stream — a function
//     of the configuration only, independent of event interleaving,
//     executor, shard count, and (because fill() is bit-identical to the
//     scalar loop) of the block size.
//   * Fault / repair / throttle draws stay on their dedicated PR-6/7 tags
//     and are never routed through a buffer, so enabling batching cannot
//     move their streams.
//
// The trade-off: a buffered site's variates come from a *different* stream
// than the unbuffered per-entity stream, so default-flag outputs change if
// buffering is switched on.  That is why it is opt-in (--batch-sampling)
// and why the distributional results are gated by the same KS/equivalence
// harness as every sampler change (see EXPERIMENTS.md).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "des/random.hpp"
#include "stats/sampler.hpp"

namespace paradyn::stats {

/// How a hot site should buffer its draws.  Default: disabled (block == 0),
/// the site draws from its entity stream per event, exactly as before.
struct BatchSpec {
  std::uint64_t seed = 0;    ///< Global experiment seed.
  std::uint64_t entity = 0;  ///< Owning entity's tag (node/app/daemon id).
  std::uint64_t site = 0;    ///< Per-site stream tag (rocc::kBatchSiteBase + i).
  std::uint32_t block = 0;   ///< Variates per refill; 0 disables buffering.

  [[nodiscard]] bool enabled() const noexcept { return block > 0; }

  /// The same spec aimed at the site `offset` slots further along — how an
  /// entity with several draw sites derives one spec per site.
  [[nodiscard]] BatchSpec at(std::uint64_t offset) const noexcept {
    BatchSpec s = *this;
    s.site += offset;
    return s;
  }
};

/// A FrozenSampler plus (optionally) a prefill buffer on a dedicated
/// stream.  Unbuffered (the default), operator() forwards to the sampler
/// on the caller's RNG — bit-identical to calling the sampler directly.
class BufferedSampler {
 public:
  BufferedSampler() = default;

  /// Buffer only when the spec asks for it AND the sampler actually
  /// consumes randomness (buffering a Deterministic is a pure copy tax).
  BufferedSampler(FrozenSampler sampler, const BatchSpec& spec)
      : sampler_(sampler), buffered_(spec.enabled() && sampler.stochastic()) {
    if (buffered_) {
      stream_ = des::RngStream(spec.seed, spec.entity, spec.site);
      buffer_.resize(spec.block);
      pos_ = spec.block;  // empty: first draw triggers the first refill
    }
  }

  /// Draw one variate.  `rng` is the caller's entity stream, consumed only
  /// in pass-through mode; a buffered site leaves it untouched (which is
  /// what keeps the non-buffered draws on that stream bit-stable).
  double operator()(des::Pcg32& rng) {
    if (!buffered_) return sampler_(rng);
    if (pos_ == buffer_.size()) {
      sampler_.fill(stream_, buffer_);
      pos_ = 0;
    }
    return buffer_[pos_++];
  }

  [[nodiscard]] bool buffered() const noexcept { return buffered_; }
  [[nodiscard]] const FrozenSampler& sampler() const noexcept { return sampler_; }

 private:
  FrozenSampler sampler_;
  std::vector<double> buffer_;
  std::size_t pos_ = 0;
  des::RngStream stream_;
  bool buffered_ = false;
};

}  // namespace paradyn::stats
