#include "stats/distributions.hpp"

#include <cmath>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "stats/special_functions.hpp"

namespace paradyn::stats {
namespace {
constexpr double kPi = 3.14159265358979323846;

void require_positive(double v, const char* what) {
  if (!(v > 0.0)) throw std::invalid_argument(std::string(what) + " must be > 0");
}
}  // namespace

double Distribution::log_pdf(double x) const {
  // Fallback for subclasses without a log-space density.  Families below
  // override this: log(pdf(x)) underflows to -inf once pdf(x) rounds to 0,
  // which silently disqualifies a model when fitting large samples with
  // far-tail observations.
  const double p = pdf(x);
  return p > 0.0 ? std::log(p) : -std::numeric_limits<double>::infinity();
}

double Distribution::log_likelihood(std::span<const double> data) const {
  double ll = 0.0;
  for (const double x : data) {
    const double lp = log_pdf(x);
    if (lp == -std::numeric_limits<double>::infinity()) return lp;
    ll += lp;
  }
  return ll;
}

double Distribution::stddev() const { return std::sqrt(variance()); }

double sample_standard_normal(des::Pcg32& rng) {
  // Box-Muller; one variate per call keeps streams replayable without
  // hidden generator state.
  const double u1 = rng.next_open_double();
  const double u2 = rng.next_double();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * kPi * u2);
}

// ---------------------------------------------------------------- Exponential

Exponential::Exponential(double mean) : mean_(mean) { require_positive(mean, "Exponential mean"); }

std::string Exponential::describe() const {
  std::ostringstream os;
  os << "exponential(mean=" << mean_ << ")";
  return os.str();
}

double Exponential::pdf(double x) const {
  if (x < 0.0) return 0.0;
  return std::exp(-x / mean_) / mean_;
}

double Exponential::log_pdf(double x) const {
  if (x < 0.0) return -std::numeric_limits<double>::infinity();
  return -x / mean_ - std::log(mean_);
}

double Exponential::cdf(double x) const {
  if (x <= 0.0) return 0.0;
  return -std::expm1(-x / mean_);
}

double Exponential::quantile(double p) const {
  if (!(p >= 0.0 && p < 1.0)) throw std::invalid_argument("Exponential::quantile: p in [0,1)");
  return -mean_ * std::log1p(-p);
}

double Exponential::sample(des::Pcg32& rng) const {
  return -mean_ * std::log(rng.next_open_double());
}

// ------------------------------------------------------------------ Lognormal

Lognormal::Lognormal(double mu, double sigma) : mu_(mu), sigma_(sigma) {
  require_positive(sigma, "Lognormal sigma");
}

Lognormal Lognormal::from_mean_stddev(double mean, double stddev) {
  require_positive(mean, "Lognormal mean");
  require_positive(stddev, "Lognormal stddev");
  const double cv2 = (stddev / mean) * (stddev / mean);
  const double sigma2 = std::log1p(cv2);
  const double mu = std::log(mean) - 0.5 * sigma2;
  return Lognormal(mu, std::sqrt(sigma2));
}

std::string Lognormal::describe() const {
  std::ostringstream os;
  os << "lognormal(mean=" << mean() << ", stddev=" << stddev() << ")";
  return os.str();
}

double Lognormal::mean() const { return std::exp(mu_ + 0.5 * sigma_ * sigma_); }

double Lognormal::variance() const {
  const double s2 = sigma_ * sigma_;
  return std::expm1(s2) * std::exp(2.0 * mu_ + s2);
}

double Lognormal::pdf(double x) const {
  if (x <= 0.0) return 0.0;
  const double z = (std::log(x) - mu_) / sigma_;
  return std::exp(-0.5 * z * z) / (x * sigma_ * std::sqrt(2.0 * kPi));
}

double Lognormal::log_pdf(double x) const {
  if (x <= 0.0) return -std::numeric_limits<double>::infinity();
  const double lx = std::log(x);
  const double z = (lx - mu_) / sigma_;
  return -0.5 * z * z - lx - std::log(sigma_) - 0.5 * std::log(2.0 * kPi);
}

double Lognormal::cdf(double x) const {
  if (x <= 0.0) return 0.0;
  return normal_cdf((std::log(x) - mu_) / sigma_);
}

double Lognormal::quantile(double p) const {
  return std::exp(mu_ + sigma_ * normal_quantile(p));
}

double Lognormal::sample(des::Pcg32& rng) const {
  return std::exp(mu_ + sigma_ * sample_standard_normal(rng));
}

// -------------------------------------------------------------------- Weibull

Weibull::Weibull(double shape, double scale) : shape_(shape), scale_(scale) {
  require_positive(shape, "Weibull shape");
  require_positive(scale, "Weibull scale");
}

std::string Weibull::describe() const {
  std::ostringstream os;
  os << "weibull(shape=" << shape_ << ", scale=" << scale_ << ")";
  return os.str();
}

double Weibull::mean() const { return scale_ * std::tgamma(1.0 + 1.0 / shape_); }

double Weibull::variance() const {
  const double g1 = std::tgamma(1.0 + 1.0 / shape_);
  const double g2 = std::tgamma(1.0 + 2.0 / shape_);
  return scale_ * scale_ * (g2 - g1 * g1);
}

double Weibull::pdf(double x) const {
  if (x < 0.0) return 0.0;
  if (x == 0.0) return (shape_ < 1.0) ? std::numeric_limits<double>::infinity()
                                      : (shape_ == 1.0 ? 1.0 / scale_ : 0.0);
  const double t = x / scale_;
  return (shape_ / scale_) * std::pow(t, shape_ - 1.0) * std::exp(-std::pow(t, shape_));
}

double Weibull::log_pdf(double x) const {
  if (x < 0.0) return -std::numeric_limits<double>::infinity();
  if (x == 0.0) {
    // Matches pdf(0): +inf for shape < 1, log(1/scale) at shape == 1, -inf
    // (density 0) for shape > 1.
    if (shape_ < 1.0) return std::numeric_limits<double>::infinity();
    return shape_ == 1.0 ? -std::log(scale_) : -std::numeric_limits<double>::infinity();
  }
  const double lt = std::log(x / scale_);
  return std::log(shape_ / scale_) + (shape_ - 1.0) * lt - std::exp(shape_ * lt);
}

double Weibull::cdf(double x) const {
  if (x <= 0.0) return 0.0;
  return -std::expm1(-std::pow(x / scale_, shape_));
}

double Weibull::quantile(double p) const {
  if (!(p >= 0.0 && p < 1.0)) throw std::invalid_argument("Weibull::quantile: p in [0,1)");
  return scale_ * std::pow(-std::log1p(-p), 1.0 / shape_);
}

double Weibull::sample(des::Pcg32& rng) const {
  return scale_ * std::pow(-std::log(rng.next_open_double()), 1.0 / shape_);
}

// -------------------------------------------------------------------- Uniform

Uniform::Uniform(double lo, double hi) : lo_(lo), hi_(hi) {
  if (!(hi > lo)) throw std::invalid_argument("Uniform: hi must be > lo");
}

std::string Uniform::describe() const {
  std::ostringstream os;
  os << "uniform(" << lo_ << ", " << hi_ << ")";
  return os.str();
}

double Uniform::variance() const {
  const double w = hi_ - lo_;
  return w * w / 12.0;
}

double Uniform::pdf(double x) const {
  return (x >= lo_ && x <= hi_) ? 1.0 / (hi_ - lo_) : 0.0;
}

double Uniform::log_pdf(double x) const {
  return (x >= lo_ && x <= hi_) ? -std::log(hi_ - lo_)
                                : -std::numeric_limits<double>::infinity();
}

double Uniform::cdf(double x) const {
  if (x <= lo_) return 0.0;
  if (x >= hi_) return 1.0;
  return (x - lo_) / (hi_ - lo_);
}

double Uniform::quantile(double p) const {
  if (!(p >= 0.0 && p <= 1.0)) throw std::invalid_argument("Uniform::quantile: p in [0,1]");
  return lo_ + p * (hi_ - lo_);
}

double Uniform::sample(des::Pcg32& rng) const { return lo_ + rng.next_double() * (hi_ - lo_); }

// -------------------------------------------------------------- Deterministic

Deterministic::Deterministic(double value) : value_(value) {
  if (!(value >= 0.0)) throw std::invalid_argument("Deterministic value must be >= 0");
}

std::string Deterministic::describe() const {
  std::ostringstream os;
  os << "deterministic(" << value_ << ")";
  return os.str();
}

double Deterministic::pdf(double x) const {
  return (x == value_) ? std::numeric_limits<double>::infinity() : 0.0;
}

double Deterministic::log_pdf(double x) const {
  return (x == value_) ? std::numeric_limits<double>::infinity()
                       : -std::numeric_limits<double>::infinity();
}

double Deterministic::cdf(double x) const { return (x >= value_) ? 1.0 : 0.0; }

double Deterministic::quantile(double /*p*/) const { return value_; }

double Deterministic::sample(des::Pcg32& /*rng*/) const { return value_; }

}  // namespace paradyn::stats
