#include "stats/special_functions.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace paradyn::stats {
namespace {

constexpr double kPi = 3.14159265358979323846;

/// Lentz continued-fraction evaluation of the incomplete beta.
double beta_cf(double x, double a, double b) {
  constexpr int kMaxIter = 300;
  constexpr double kEps = 3e-15;
  constexpr double kTiny = 1e-300;

  const double qab = a + b;
  const double qap = a + 1.0;
  const double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::fabs(d) < kTiny) d = kTiny;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= kMaxIter; ++m) {
    const int m2 = 2 * m;
    double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < kEps) break;
  }
  return h;
}

}  // namespace

double normal_pdf(double z) {
  return std::exp(-0.5 * z * z) / std::sqrt(2.0 * kPi);
}

double normal_cdf(double z) {
  return 0.5 * std::erfc(-z / std::sqrt(2.0));
}

double normal_quantile(double p) {
  if (!(p > 0.0 && p < 1.0)) {
    throw std::invalid_argument("normal_quantile: p must be in (0,1)");
  }
  // Acklam's rational approximation.
  static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                             -2.759285104469687e+02, 1.383577518672690e+02,
                             -3.066479806614716e+01, 2.506628277459239e+00};
  static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                             -1.556989798598866e+02, 6.680131188771972e+01,
                             -1.328068155288572e+01};
  static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                             -2.400758277161838e+00, -2.549732539343734e+00,
                             4.374664141464968e+00,  2.938163982698783e+00};
  static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                             2.445134137142996e+00, 3.754408661907416e+00};
  constexpr double p_low = 0.02425;

  double x;
  if (p < p_low) {
    const double q = std::sqrt(-2.0 * std::log(p));
    x = (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  } else if (p <= 1.0 - p_low) {
    const double q = p - 0.5;
    const double r = q * q;
    x = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q /
        (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  } else {
    const double q = std::sqrt(-2.0 * std::log(1.0 - p));
    x = -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  // One Halley refinement step against the exact CDF.
  const double e = normal_cdf(x) - p;
  const double u = e * std::sqrt(2.0 * kPi) * std::exp(0.5 * x * x);
  x = x - u / (1.0 + 0.5 * x * u);
  return x;
}

double regularized_gamma_p(double a, double x) {
  if (a <= 0.0) throw std::invalid_argument("regularized_gamma_p: a must be > 0");
  if (x < 0.0) throw std::invalid_argument("regularized_gamma_p: x must be >= 0");
  if (x == 0.0) return 0.0;

  if (x < a + 1.0) {
    // Series representation.
    double ap = a;
    double sum = 1.0 / a;
    double del = sum;
    for (int n = 0; n < 500; ++n) {
      ap += 1.0;
      del *= x / ap;
      sum += del;
      if (std::fabs(del) < std::fabs(sum) * 1e-15) break;
    }
    return sum * std::exp(-x + a * std::log(x) - std::lgamma(a));
  }
  // Continued fraction for Q(a,x), then P = 1 - Q.
  constexpr double kTiny = 1e-300;
  double b = x + 1.0 - a;
  double c = 1.0 / kTiny;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i <= 500; ++i) {
    const double an = -static_cast<double>(i) * (static_cast<double>(i) - a);
    b += 2.0;
    d = an * d + b;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = b + an / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < 1e-15) break;
  }
  const double q = std::exp(-x + a * std::log(x) - std::lgamma(a)) * h;
  return 1.0 - q;
}

double regularized_beta(double x, double a, double b) {
  if (a <= 0.0 || b <= 0.0) throw std::invalid_argument("regularized_beta: a,b must be > 0");
  if (x <= 0.0) return 0.0;
  if (x >= 1.0) return 1.0;
  const double ln_front =
      std::lgamma(a + b) - std::lgamma(a) - std::lgamma(b) + a * std::log(x) + b * std::log1p(-x);
  const double front = std::exp(ln_front);
  if (x < (a + 1.0) / (a + b + 2.0)) {
    return front * beta_cf(x, a, b) / a;
  }
  return 1.0 - front * beta_cf(1.0 - x, b, a) / b;
}

double student_t_cdf(double t, double df) {
  if (df <= 0.0) throw std::invalid_argument("student_t_cdf: df must be > 0");
  const double x = df / (df + t * t);
  const double p = 0.5 * regularized_beta(x, 0.5 * df, 0.5);
  return (t >= 0.0) ? 1.0 - p : p;
}

double student_t_quantile(double p, double df) {
  if (!(p > 0.0 && p < 1.0)) {
    throw std::invalid_argument("student_t_quantile: p must be in (0,1)");
  }
  if (df <= 0.0) throw std::invalid_argument("student_t_quantile: df must be > 0");
  if (p == 0.5) return 0.0;

  // Bracket around the normal quantile and bisect on the exact CDF.
  const double z = normal_quantile(p);
  double lo = z - 1.0;
  double hi = z + 1.0;
  if (std::fabs(z) < 1.0) {
    lo = -2.0;
    hi = 2.0;
  }
  while (student_t_cdf(lo, df) > p) lo *= 2.0;
  while (student_t_cdf(hi, df) < p) hi *= 2.0;
  for (int i = 0; i < 200; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (student_t_cdf(mid, df) < p) {
      lo = mid;
    } else {
      hi = mid;
    }
    if (hi - lo < 1e-12 * (1.0 + std::fabs(hi))) break;
  }
  return 0.5 * (lo + hi);
}

}  // namespace paradyn::stats
