// Walker/Vose alias method over the segments of an empirical CDF.
//
// The PR-6 Empirical sampler reproduced Empirical::quantile(U) inline:
// scale U by (n-1), floor to pick a segment of the sorted order
// statistics, and lerp.  That is one multiply + floor + two loads per
// draw, but the floor/branch chain pipelines poorly and it cannot be
// batched without re-deriving the segment index per lane.
//
// The inverse-CDF mixture view gives an O(1) branch-light alternative:
// the quantile path is exactly a mixture over the n-1 segments
// [v_i, v_{i+1}], each with weight 1/(n-1), sampled uniformly inside the
// segment (degenerate segments with v_i == v_{i+1} are atoms).  Merging
// consecutive segments with identical endpoints — common when the sample
// has ties — compresses the mixture, and a Walker alias table picks a
// component with one compare regardless of the number of components.
//
// One 64-bit PCG draw per variate: the high 32 bits pick a column via a
// Lemire multiply-shift, the low 32 bits drive both the alias accept test
// and the in-segment interpolation fraction (renormalized with
// precomputed reciprocals — no division on the draw path).
//
// Same distribution as the quantile path, but a *different* draw stream
// (one u64 here vs. the quantile path's one u64 consumed as a double) —
// so the Ziggurat backend uses this table and `--reference-rng` keeps the
// historical quantile arithmetic.  Statistical equivalence is gated by
// the KS harness in tests/stats/stat_equiv_test.cpp.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "des/random.hpp"

namespace paradyn::stats {

class AliasTable {
 public:
  /// Empty table: draws 0.0 (placeholder, like FrozenSampler's default).
  AliasTable() = default;

  /// Build from sorted order statistics (Empirical::values()).  A single
  /// value yields a degenerate table that always returns it.
  [[nodiscard]] static AliasTable from_sorted_values(const std::vector<double>& values);

  /// Draw one variate (one Pcg32::next_u64()).
  [[nodiscard]] double operator()(des::Pcg32& rng) const noexcept {
    if (columns_ <= 1) {
      if (width_.empty()) return lo_.empty() ? 0.0 : lo_[0];
      // Single column: skip the alias test but still consume one u64 so
      // the stream shape is independent of the table's compression.
      const std::uint64_t u = rng.next_u64();
      const double frac = static_cast<double>(u & 0xffffffffULL) * 0x1.0p-32;
      return lo_[0] + frac * width_[0];
    }
    const std::uint64_t u = rng.next_u64();
    // Lemire multiply-shift: hi32 -> column index in [0, columns_).
    const std::uint64_t hi = u >> 32;
    const auto col = static_cast<std::size_t>((hi * columns_) >> 32);
    const double x = static_cast<double>(u & 0xffffffffULL) * 0x1.0p-32;
    std::size_t pick = col;
    double frac;
    if (x < prob_[col]) {
      frac = x * inv_p_[col];
    } else {
      pick = alias_[col];
      frac = (x - prob_[col]) * inv_q_[col];
    }
    if (frac > 1.0) frac = 1.0;  // reciprocal rounding can overshoot by 1 ulp
    return lo_[pick] + frac * width_[pick];
  }

  /// Bulk draw: the same stream as n scalar calls.
  void fill(des::Pcg32& rng, double* out, std::size_t n) const noexcept {
    for (std::size_t i = 0; i < n; ++i) out[i] = (*this)(rng);
  }

  /// Number of merged mixture components (1 column skips the alias test).
  [[nodiscard]] std::size_t columns() const noexcept {
    return static_cast<std::size_t>(columns_);
  }

  /// True when every draw returns the same value (single-point sample).
  [[nodiscard]] bool degenerate() const noexcept { return width_.empty(); }

 private:
  // Structure-of-arrays column storage, indexed by column id.
  std::vector<double> prob_;     ///< Alias acceptance threshold in [0, 1].
  std::vector<double> inv_p_;    ///< 1 / prob (0 when prob == 0).
  std::vector<double> inv_q_;    ///< 1 / (1 - prob) (0 when prob == 1).
  std::vector<std::uint32_t> alias_;
  std::vector<double> lo_;       ///< Segment low endpoint (or the atom value).
  std::vector<double> width_;    ///< hi - lo; 0 for atoms.
  std::uint64_t columns_ = 0;
};

}  // namespace paradyn::stats
