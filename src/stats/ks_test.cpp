#include "stats/ks_test.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

namespace paradyn::stats {

double kolmogorov_q(double lambda) {
  if (!(lambda > 0.0)) return 1.0;
  // The alternating series converges in a handful of terms for lambda of
  // practical size; below ~0.2 it needs many terms but is numerically 1.
  if (lambda < 0.2) return 1.0;
  double sum = 0.0;
  double sign = 1.0;
  for (int k = 1; k <= 100; ++k) {
    const double term = std::exp(-2.0 * static_cast<double>(k) * static_cast<double>(k) *
                                 lambda * lambda);
    sum += sign * term;
    if (term < 1e-12) break;
    sign = -sign;
  }
  return std::clamp(2.0 * sum, 0.0, 1.0);
}

double kolmogorov_p_value(double statistic, std::size_t n) {
  if (n == 0) throw std::invalid_argument("kolmogorov_p_value: n must be > 0");
  const double sqrt_n = std::sqrt(static_cast<double>(n));
  return kolmogorov_q((sqrt_n + 0.12 + 0.11 / sqrt_n) * statistic);
}

KsTestResult ks_test(std::span<const double> data, const CdfFn& cdf) {
  if (data.empty()) throw std::invalid_argument("ks_test: empty data");
  std::vector<double> sorted(data.begin(), data.end());
  std::sort(sorted.begin(), sorted.end());
  const auto n = static_cast<double>(sorted.size());
  double d = 0.0;
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    const double f = cdf(sorted[i]);
    const double lo = static_cast<double>(i) / n;
    const double hi = static_cast<double>(i + 1) / n;
    d = std::max({d, std::fabs(f - lo), std::fabs(f - hi)});
  }
  KsTestResult r;
  r.statistic = d;
  r.n = sorted.size();
  r.p_value = kolmogorov_p_value(d, sorted.size());
  return r;
}

KsTestResult ks_test(std::span<const double> data, const Distribution& dist) {
  return ks_test(data, [&dist](double x) { return dist.cdf(x); });
}

}  // namespace paradyn::stats
