#include "stats/factorial.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>

namespace paradyn::stats {

const FactorialEffect& FactorialAnalysis::effect(const std::string& label) const {
  for (const auto& e : effects) {
    if (e.label == label) return e;
  }
  throw std::out_of_range("FactorialAnalysis::effect: no effect labeled " + label);
}

FactorialDesign::FactorialDesign(std::vector<std::string> factor_names, std::size_t replications)
    : names_(std::move(factor_names)), reps_(replications) {
  if (names_.empty()) throw std::invalid_argument("FactorialDesign: need at least one factor");
  if (names_.size() > 16) throw std::invalid_argument("FactorialDesign: too many factors");
  if (reps_ == 0) throw std::invalid_argument("FactorialDesign: replications must be >= 1");
  responses_.assign(num_cells(), std::vector<double>(reps_, 0.0));
  filled_.assign(num_cells(), std::vector<bool>(reps_, false));
}

void FactorialDesign::set_response(unsigned cell_mask, std::size_t rep, double y) {
  if (cell_mask >= num_cells()) throw std::out_of_range("FactorialDesign: bad cell mask");
  if (rep >= reps_) throw std::out_of_range("FactorialDesign: bad replication index");
  responses_[cell_mask][rep] = y;
  filled_[cell_mask][rep] = true;
}

bool FactorialDesign::complete() const noexcept {
  for (const auto& cell : filled_) {
    for (const bool f : cell) {
      if (!f) return false;
    }
  }
  return true;
}

std::string FactorialDesign::mask_label(unsigned mask) {
  if (mask == 0) return "mean";
  std::string label;
  for (unsigned i = 0; mask >> i; ++i) {
    if (mask & (1U << i)) label.push_back(static_cast<char>('A' + i));
  }
  return label;
}

FactorialAnalysis FactorialDesign::analyze() const {
  if (!complete()) throw std::logic_error("FactorialDesign::analyze: design incomplete");
  const std::size_t cells = num_cells();
  const auto cells_d = static_cast<double>(cells);
  const auto reps_d = static_cast<double>(reps_);

  // Per-cell means and within-cell (replication) error.
  std::vector<double> cell_mean(cells, 0.0);
  double sse = 0.0;
  for (std::size_t c = 0; c < cells; ++c) {
    double sum = 0.0;
    for (const double y : responses_[c]) sum += y;
    cell_mean[c] = sum / reps_d;
    for (const double y : responses_[c]) {
      const double d = y - cell_mean[c];
      sse += d * d;
    }
  }

  // Sign-table effects: q_mask = (1/2^k) * sum_cells sign(mask, cell) * mean.
  // sign(mask, cell) = +1 if the parity of (mask & cell) is even when
  // low level is encoded as -1: each participating factor contributes its
  // level sign, i.e. product over bits of (+1 if cell bit set else -1).
  FactorialAnalysis out;
  std::vector<double> q(cells, 0.0);
  for (unsigned mask = 0; mask < cells; ++mask) {
    double acc = 0.0;
    for (unsigned cell = 0; cell < cells; ++cell) {
      // Parity of participating factors that are at the LOW level.
      const unsigned lows = mask & ~cell;
      const double sign = (std::popcount(lows) % 2 == 0) ? 1.0 : -1.0;
      acc += sign * cell_mean[cell];
    }
    q[mask] = acc / cells_d;
  }
  out.grand_mean = q[0];

  double ss_effects = 0.0;
  for (unsigned mask = 1; mask < cells; ++mask) {
    FactorialEffect e;
    e.mask = mask;
    e.label = mask_label(mask);
    e.effect = q[mask];
    e.sum_of_squares = cells_d * reps_d * q[mask] * q[mask];
    ss_effects += e.sum_of_squares;
    out.effects.push_back(std::move(e));
  }

  out.sse = sse;
  out.sst = ss_effects + sse;
  const double sst = (out.sst > 0.0) ? out.sst : 1.0;
  for (auto& e : out.effects) e.variation_fraction = e.sum_of_squares / sst;
  out.error_fraction = sse / sst;

  std::sort(out.effects.begin(), out.effects.end(),
            [](const FactorialEffect& a, const FactorialEffect& b) {
              return a.variation_fraction > b.variation_fraction;
            });
  return out;
}

}  // namespace paradyn::stats
