// Empirical distribution over observed data.
//
// The alternative to parametric fitting (Law & Kelton ch. 6): when none of
// the candidate families matches the occupancy-request lengths well, drive
// the ROCC simulator directly from the observed sample, interpolating the
// empirical CDF between order statistics.  Plugs in anywhere a parametric
// Distribution does (trace replay without distribution fitting).
#pragma once

#include <span>
#include <vector>

#include "stats/distributions.hpp"

namespace paradyn::stats {

class Empirical final : public Distribution {
 public:
  /// Builds the interpolated empirical CDF from `data` (copied, sorted).
  /// Requires at least two observations.
  explicit Empirical(std::span<const double> data);

  [[nodiscard]] std::string name() const override { return "empirical"; }
  [[nodiscard]] std::string describe() const override;
  [[nodiscard]] double mean() const override { return mean_; }
  [[nodiscard]] double variance() const override { return variance_; }
  /// Piecewise-constant density between order statistics (0 outside the
  /// observed range).
  [[nodiscard]] double pdf(double x) const override;
  /// Piecewise-linear interpolated empirical CDF.
  [[nodiscard]] double cdf(double x) const override;
  [[nodiscard]] double quantile(double p) const override;
  /// Inverse-CDF sampling: continuous variates on [min, max].
  [[nodiscard]] double sample(des::Pcg32& rng) const override;

  [[nodiscard]] std::size_t observations() const noexcept { return sorted_.size(); }
  [[nodiscard]] double min() const noexcept { return sorted_.front(); }
  [[nodiscard]] double max() const noexcept { return sorted_.back(); }
  /// The sorted order statistics (FrozenSampler compiles these into its
  /// inline interpolation table).
  [[nodiscard]] std::span<const double> values() const noexcept { return sorted_; }

 private:
  std::vector<double> sorted_;
  double mean_ = 0.0;
  double variance_ = 0.0;
};

}  // namespace paradyn::stats
