// Steady-state output analysis for correlated simulation time series.
//
// The replication CIs in confidence.hpp assume independent observations —
// valid across seed-varied runs, but not within one run where successive
// latency or utilization observations are autocorrelated.  This module
// provides the standard machinery (Law & Kelton ch. 9): autocorrelation
// estimates, and the batch-means method that groups a long correlated
// series into nearly-independent batch averages before applying a
// Student-t interval.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "stats/confidence.hpp"

namespace paradyn::stats {

/// Lag-k autocorrelation estimate r_k of a series (biased, the standard
/// time-series estimator).  Throws if k >= n or the series is constant.
[[nodiscard]] double autocorrelation(std::span<const double> series, std::size_t lag);

/// Autocorrelations for lags 1..max_lag.
[[nodiscard]] std::vector<double> autocorrelations(std::span<const double> series,
                                                   std::size_t max_lag);

/// Batch-means analysis of one long run.
struct BatchMeansResult {
  std::size_t batch_count = 0;
  std::size_t batch_size = 0;
  std::vector<double> batch_means;
  ConfidenceInterval ci;          ///< Student-t interval over the batch means.
  double lag1_of_batch_means = 0; ///< Should be near 0 if batches are big enough.
};

/// Split `series` into `batches` equal batches (dropping the remainder),
/// average each, and compute a confidence interval over the batch means.
/// Requires at least 2 batches with at least 1 observation each.
[[nodiscard]] BatchMeansResult batch_means(std::span<const double> series, std::size_t batches,
                                           double level = 0.90);

/// Heuristic check that a batch size is large enough: the lag-1
/// autocorrelation of the batch means is below `threshold` in magnitude.
[[nodiscard]] bool batches_look_independent(const BatchMeansResult& result,
                                            double threshold = 0.2);

}  // namespace paradyn::stats
