#include "stats/ziggurat.hpp"

#include <cmath>

namespace paradyn::stats::detail {
namespace {

// Scale factors matching the mantissa widths drawn in ziggurat.hpp: the
// normal uses a signed 53-bit value (52 magnitude bits), the exponential an
// unsigned 53-bit value.
constexpr double kNormalScale = 4503599627370496.0;  // 2^52
constexpr double kExpScale = 9007199254740992.0;     // 2^53

// Area of each of the 256 equal-area regions (layer or base strip + tail).
constexpr double kNormalZigV = 4.92867323399e-3;
constexpr double kExpZigV = 3.9496598225815571993e-3;

/// Build the normal ziggurat (Marsaglia & Tsang's zigset, 256 layers,
/// 52-bit scaling).  Layer i spans [0, x_i] with x_1 = r down to x_255 ~ 0;
/// index 0 is the base strip whose overhang is the tail.
ZigguratTable make_normal_table() {
  ZigguratTable t;
  double dn = kNormalZigR;
  double tn = dn;
  const double q = kNormalZigV / std::exp(-0.5 * dn * dn);

  t.k[0] = static_cast<std::uint64_t>((dn / q) * kNormalScale);
  t.k[1] = 0;
  t.w[0] = q / kNormalScale;
  t.w[255] = dn / kNormalScale;
  t.f[0] = 1.0;
  t.f[255] = std::exp(-0.5 * dn * dn);
  for (int i = 254; i >= 1; --i) {
    dn = std::sqrt(-2.0 * std::log(kNormalZigV / dn + std::exp(-0.5 * dn * dn)));
    t.k[i + 1] = static_cast<std::uint64_t>((dn / tn) * kNormalScale);
    tn = dn;
    t.f[i] = std::exp(-0.5 * dn * dn);
    t.w[i] = dn / kNormalScale;
  }
  return t;
}

/// Build the exponential ziggurat (same construction against f(x) = e^-x).
ZigguratTable make_exp_table() {
  ZigguratTable t;
  double de = kExpZigR;
  double te = de;
  const double q = kExpZigV / std::exp(-de);

  t.k[0] = static_cast<std::uint64_t>((de / q) * kExpScale);
  t.k[1] = 0;
  t.w[0] = q / kExpScale;
  t.w[255] = de / kExpScale;
  t.f[0] = 1.0;
  t.f[255] = std::exp(-de);
  for (int i = 254; i >= 1; --i) {
    de = -std::log(kExpZigV / de + std::exp(-de));
    t.k[i + 1] = static_cast<std::uint64_t>((de / te) * kExpScale);
    te = de;
    t.f[i] = std::exp(-de);
    t.w[i] = de / kExpScale;
  }
  return t;
}

}  // namespace

const ZigguratTable kNormalZig = make_normal_table();
const ZigguratTable kExpZig = make_exp_table();

double ziggurat_normal_slow(des::Pcg32& rng, std::int64_t hz, std::uint32_t iz,
                            std::uint32_t* consumed) {
  std::uint32_t n = 0;
  for (;;) {
    if (iz == 0) {
      // Layer 0 overhang: sample the tail |x| > r by Marsaglia's method.
      double x;
      double y;
      do {
        x = -std::log(rng.next_open_double()) * (1.0 / kNormalZigR);
        y = -std::log(rng.next_open_double());
        n += 2;
      } while (y + y < x * x);
      if (consumed != nullptr) *consumed = n;
      return hz > 0 ? kNormalZigR + x : -(kNormalZigR + x);
    }
    // Wedge between layer i and i-1: accept against the true density.
    const double x = static_cast<double>(hz) * kNormalZig.w[iz];
    ++n;
    if (kNormalZig.f[iz] + rng.next_double() * (kNormalZig.f[iz - 1] - kNormalZig.f[iz]) <
        std::exp(-0.5 * x * x)) {
      if (consumed != nullptr) *consumed = n;
      return x;
    }
    const std::uint64_t u = rng.next_u64();
    ++n;
    iz = static_cast<std::uint32_t>(u & 255U);
    hz = static_cast<std::int64_t>(u) >> 11;
    const auto az = static_cast<std::uint64_t>(hz < 0 ? -hz : hz);
    if (az < kNormalZig.k[iz]) {
      if (consumed != nullptr) *consumed = n;
      return static_cast<double>(hz) * kNormalZig.w[iz];
    }
  }
}

double ziggurat_exponential_slow(des::Pcg32& rng, std::uint64_t jz, std::uint32_t iz,
                                 std::uint32_t* consumed) {
  std::uint32_t n = 0;
  for (;;) {
    // Memoryless tail: x > r distributed as r + Exp(1).
    if (iz == 0) {
      if (consumed != nullptr) *consumed = n + 1;
      return kExpZigR - std::log(rng.next_open_double());
    }
    const double x = static_cast<double>(jz) * kExpZig.w[iz];
    ++n;
    if (kExpZig.f[iz] + rng.next_double() * (kExpZig.f[iz - 1] - kExpZig.f[iz]) < std::exp(-x)) {
      if (consumed != nullptr) *consumed = n;
      return x;
    }
    const std::uint64_t u = rng.next_u64();
    ++n;
    iz = static_cast<std::uint32_t>(u & 255U);
    jz = u >> 11;
    if (jz < kExpZig.k[iz]) {
      if (consumed != nullptr) *consumed = n;
      return static_cast<double>(jz) * kExpZig.w[iz];
    }
  }
}

}  // namespace paradyn::stats::detail
