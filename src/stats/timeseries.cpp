#include "stats/timeseries.hpp"

#include <cmath>
#include <stdexcept>

#include "stats/summary.hpp"

namespace paradyn::stats {

double autocorrelation(std::span<const double> series, std::size_t lag) {
  const std::size_t n = series.size();
  if (lag == 0) return 1.0;
  if (lag >= n) throw std::invalid_argument("autocorrelation: lag >= series length");

  const SummaryStats s = summarize(series);
  const double mean = s.mean();
  double denom = 0.0;
  for (const double x : series) {
    const double d = x - mean;
    denom += d * d;
  }
  if (denom == 0.0) throw std::invalid_argument("autocorrelation: constant series");

  double num = 0.0;
  for (std::size_t i = 0; i + lag < n; ++i) {
    num += (series[i] - mean) * (series[i + lag] - mean);
  }
  return num / denom;
}

std::vector<double> autocorrelations(std::span<const double> series, std::size_t max_lag) {
  std::vector<double> out;
  out.reserve(max_lag);
  for (std::size_t k = 1; k <= max_lag; ++k) out.push_back(autocorrelation(series, k));
  return out;
}

BatchMeansResult batch_means(std::span<const double> series, std::size_t batches, double level) {
  if (batches < 2) throw std::invalid_argument("batch_means: need at least 2 batches");
  const std::size_t batch_size = series.size() / batches;
  if (batch_size == 0) {
    throw std::invalid_argument("batch_means: series too short for requested batches");
  }

  BatchMeansResult result;
  result.batch_count = batches;
  result.batch_size = batch_size;
  result.batch_means.reserve(batches);
  for (std::size_t b = 0; b < batches; ++b) {
    double acc = 0.0;
    for (std::size_t i = 0; i < batch_size; ++i) acc += series[b * batch_size + i];
    result.batch_means.push_back(acc / static_cast<double>(batch_size));
  }
  result.ci = mean_confidence_interval(result.batch_means, level);
  bool constant = true;
  for (const double m : result.batch_means) {
    if (m != result.batch_means.front()) constant = false;
  }
  result.lag1_of_batch_means =
      (batches >= 3 && !constant) ? autocorrelation(result.batch_means, 1) : 0.0;
  return result;
}

bool batches_look_independent(const BatchMeansResult& result, double threshold) {
  return std::fabs(result.lag1_of_batch_means) < threshold;
}

}  // namespace paradyn::stats
