// Batch ziggurat kernels (see ziggurat.hpp for the contract).
//
// Bit-exactness strategy: the scalar sampler consumes one 64-bit PCG draw
// per fast-path variate and a data-dependent number of extra draws on the
// rejection path.  A straightforward SIMD formulation would pre-draw a
// vector of uniforms and hand rejecting lanes their *next* uniforms in a
// different order than the scalar loop, silently forking the stream.  The
// kernels here never let that happen:
//
//   1. Snapshot the PCG state at the head of each W-variate block
//      (W = 8 for the AVX-512 arm, 4 for AVX2).
//   2. Advance 2W lanes of LCG state at once from the snapshot using
//      precomputed multiplier powers a^k and increment prefix sums, apply
//      the XSH-RR output permutation per lane, and pair the 32-bit
//      outputs into the same W u64 draws the scalar loop would make.
//   3. Evaluate the ziggurat's one-compare fast path on all W lanes.
//   4. Commit only what provably matches the scalar stream.  AVX-512:
//      masked-store the accepted prefix, re-draw the first rejecting lane
//      scalar (slow path, extra draws and all), resume after it.  AVX2:
//      store all-accept blocks; on any rejection replay the whole block
//      through the scalar sampler from the untouched snapshot.
//
// Every arithmetic step that produces a committed variate is exact: the
// 53-bit integer -> double conversions are representable without rounding,
// and IEEE multiplication is sign-magnitude, so flipping the sign after
// |hz| * w equals double(hz) * w bit for bit.
#include "stats/ziggurat.hpp"

#include <algorithm>
#include <cmath>
#include <atomic>
#include <cstdlib>
#include <cstring>

#if defined(__x86_64__) || defined(__i386__)
#define PARADYN_ZIG_X86 1
#include <immintrin.h>
#else
#define PARADYN_ZIG_X86 0
#endif

namespace paradyn::stats {
namespace {

// --- Scalar reference loops -------------------------------------------------

void fill_normal_scalar(des::Pcg32& rng, double* out, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) out[i] = ziggurat_normal(rng);
}

void fill_exponential_scalar(des::Pcg32& rng, double* out, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) out[i] = ziggurat_exponential(rng);
}

#if PARADYN_ZIG_X86

// --- AVX2 kernels -----------------------------------------------------------

/// LCG constants for jumping k steps at once: state_k = mul[k] * state_0 +
/// add_unit[k] * inc.  add_unit[k] = a^{k-1} + ... + a + 1.  16 steps =
/// one AVX-512 block of eight u64 draws (two 32-bit outputs each);
/// 32 steps = the unrolled pair of blocks the AVX-512 main loop retires
/// per iteration.
struct LcgJump {
  std::uint64_t mul[33];
  std::uint64_t add_unit[33];
};

constexpr LcgJump make_lcg_jump() {
  LcgJump j{};
  j.mul[0] = 1;
  j.add_unit[0] = 0;
  for (int k = 1; k <= 32; ++k) {
    j.mul[k] = j.mul[k - 1] * des::Pcg32::kMultiplier;
    j.add_unit[k] = j.add_unit[k - 1] * des::Pcg32::kMultiplier + 1;
  }
  return j;
}

constexpr LcgJump kJump = make_lcg_jump();

/// The jump constants pre-split by output parity: lane j of the "even"
/// vectors holds the constants for state t_{2j} (the high half of draw
/// u_j) and the "odd" vectors for t_{2j+1} (its low half), so
/// u = (output(t_even) << 32) | output(t_odd) lands every draw in its own
/// lane already in scalar order — no cross-lane shuffle needed.
struct LcgJumpVectors {
  alignas(64) std::uint64_t mul_even[8];
  alignas(64) std::uint64_t add_even[8];
  alignas(64) std::uint64_t mul_odd[8];
  alignas(64) std::uint64_t add_odd[8];
};

constexpr LcgJumpVectors make_lcg_jump_vectors() {
  LcgJumpVectors v{};
  for (int j = 0; j < 8; ++j) {
    v.mul_even[j] = kJump.mul[2 * j];
    v.add_even[j] = kJump.add_unit[2 * j];
    v.mul_odd[j] = kJump.mul[2 * j + 1];
    v.add_odd[j] = kJump.add_unit[2 * j + 1];
  }
  return v;
}

constexpr LcgJumpVectors kJumpV = make_lcg_jump_vectors();

/// 64-bit lane-wise multiply (AVX2 has no vpmullq): schoolbook over the
/// 32-bit halves, keeping the low 64 bits.
__attribute__((target("avx2"))) inline __m256i mullo64(__m256i a, __m256i b) {
  const __m256i lo = _mm256_mul_epu32(a, b);
  const __m256i cross = _mm256_add_epi64(_mm256_mul_epu32(_mm256_srli_epi64(a, 32), b),
                                         _mm256_mul_epu32(a, _mm256_srli_epi64(b, 32)));
  return _mm256_add_epi64(lo, _mm256_slli_epi64(cross, 32));
}

/// XSH-RR output permutation on four 64-bit states, one 32-bit output per
/// lane (kept in the lane's low half).  Matches Pcg32::next_u32 exactly.
__attribute__((target("avx2"))) inline __m256i pcg_output(__m256i t) {
  const __m256i mask32 = _mm256_set1_epi64x(0xffffffffLL);
  __m256i x = _mm256_xor_si256(_mm256_srli_epi64(t, 18), t);
  x = _mm256_and_si256(_mm256_srli_epi64(x, 27), mask32);
  const __m256i rot = _mm256_srli_epi64(t, 59);
  const __m256i lshift =
      _mm256_and_si256(_mm256_sub_epi64(_mm256_set1_epi64x(32), rot), _mm256_set1_epi64x(31));
  return _mm256_and_si256(
      _mm256_or_si256(_mm256_srlv_epi64(x, rot), _mm256_sllv_epi64(x, lshift)), mask32);
}

/// The next four u64 draws from state `s`, in scalar draw order, plus the
/// state after the eighth 32-bit step (not yet committed to the RNG).
struct DrawBlock {
  __m256i u;
  std::uint64_t next_state;
};

/// States t_{k0}..t_{k0+3} from t_0 = s: t_k = a^k s + (a^{k-1}+...+1) inc.
/// (A named function, not a lambda — GCC lambdas do not inherit the
/// enclosing function's target("avx2") attribute.)
__attribute__((target("avx2"))) inline __m256i lcg_states(__m256i sv, __m256i incv, int k0) {
  const __m256i mul = _mm256_set_epi64x(
      static_cast<long long>(kJump.mul[k0 + 3]), static_cast<long long>(kJump.mul[k0 + 2]),
      static_cast<long long>(kJump.mul[k0 + 1]), static_cast<long long>(kJump.mul[k0]));
  const __m256i add = _mm256_set_epi64x(
      static_cast<long long>(kJump.add_unit[k0 + 3]),
      static_cast<long long>(kJump.add_unit[k0 + 2]),
      static_cast<long long>(kJump.add_unit[k0 + 1]),
      static_cast<long long>(kJump.add_unit[k0]));
  return _mm256_add_epi64(mullo64(mul, sv), mullo64(add, incv));
}

__attribute__((target("avx2"))) inline DrawBlock next4_u64(std::uint64_t s, std::uint64_t inc) {
  const __m256i sv = _mm256_set1_epi64x(static_cast<long long>(s));
  const __m256i incv = _mm256_set1_epi64x(static_cast<long long>(inc));
  const __m256i o_lo = pcg_output(lcg_states(sv, incv, 0));  // o0..o3
  const __m256i o_hi = pcg_output(lcg_states(sv, incv, 4));  // o4..o7
  // u_j = (o_{2j} << 32) | o_{2j+1}: interleave across the two vectors,
  // then restore draw order (unpack walks the 128-bit halves).
  const __m256i evens = _mm256_unpacklo_epi64(o_lo, o_hi);  // o0 o4 o2 o6
  const __m256i odds = _mm256_unpackhi_epi64(o_lo, o_hi);   // o1 o5 o3 o7
  __m256i u = _mm256_or_si256(_mm256_slli_epi64(evens, 32), odds);  // u0 u2 u1 u3
  u = _mm256_permute4x64_epi64(u, _MM_SHUFFLE(3, 1, 2, 0));         // u0 u1 u2 u3
  return DrawBlock{u, kJump.mul[8] * s + kJump.add_unit[8] * inc};
}

__attribute__((target("avx2"))) void fill_normal_avx2(des::Pcg32& rng, double* out,
                                                      std::size_t n) {
  const std::uint64_t inc = rng.raw_increment();
  std::uint64_t s = rng.raw_state();
  const __m256i mask8 = _mm256_set1_epi64x(255);
  const __m256i zero = _mm256_setzero_si256();
  const __m256i exp52 = _mm256_set1_epi64x(0x4330000000000000LL);
  const __m256d two52 = _mm256_set1_pd(4503599627370496.0);
  const __m256i msb = _mm256_set1_epi64x(static_cast<long long>(0x8000000000000000ULL));
  const auto* ktab = reinterpret_cast<const long long*>(detail::kNormalZig.k);

  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const DrawBlock block = next4_u64(s, inc);
    const __m256i u = block.u;
    const __m256i iz = _mm256_and_si256(u, mask8);
    // Arithmetic >> 11 emulated: logical shift, then smear the sign into
    // the top 11 bits.  sign is all-ones per negative lane.
    const __m256i sign = _mm256_cmpgt_epi64(zero, u);
    const __m256i hz = _mm256_or_si256(_mm256_srli_epi64(u, 11), _mm256_slli_epi64(sign, 53));
    const __m256i az = _mm256_sub_epi64(_mm256_xor_si256(hz, sign), sign);
    const __m256i kv = _mm256_i64gather_epi64(ktab, iz, 8);
    // az and k are < 2^52, so the signed compare is an unsigned compare.
    const __m256i accept = _mm256_cmpgt_epi64(kv, az);
    if (_mm256_movemask_pd(_mm256_castsi256_pd(accept)) != 0xF) {
      // Some lane needs the wedge/tail: replay the whole block scalar from
      // the uncommitted snapshot so the rejection draws interleave exactly
      // as the scalar loop's would.
      rng.set_raw_state(s);
      out[i] = ziggurat_normal(rng);
      out[i + 1] = ziggurat_normal(rng);
      out[i + 2] = ziggurat_normal(rng);
      out[i + 3] = ziggurat_normal(rng);
      s = rng.raw_state();
      continue;
    }
    // double(az) exactly, via the 2^52 mantissa-injection trick (az < 2^52),
    // then the sign flip reproduces double(hz) — IEEE multiply is
    // sign-magnitude, so (±|hz|) * w match bit for bit.
    const __m256d mag = _mm256_sub_pd(_mm256_castsi256_pd(_mm256_or_si256(az, exp52)), two52);
    const __m256d value = _mm256_castsi256_pd(
        _mm256_xor_si256(_mm256_castpd_si256(mag), _mm256_and_si256(sign, msb)));
    const __m256d w = _mm256_i64gather_pd(detail::kNormalZig.w, iz, 8);
    _mm256_storeu_pd(out + i, _mm256_mul_pd(value, w));
    s = block.next_state;
  }
  rng.set_raw_state(s);
  for (; i < n; ++i) out[i] = ziggurat_normal(rng);
}

__attribute__((target("avx2"))) void fill_exponential_avx2(des::Pcg32& rng, double* out,
                                                           std::size_t n) {
  const std::uint64_t inc = rng.raw_increment();
  std::uint64_t s = rng.raw_state();
  const __m256i mask8 = _mm256_set1_epi64x(255);
  const __m256i mask52 = _mm256_set1_epi64x(0xfffffffffffffLL);
  const __m256i exp52 = _mm256_set1_epi64x(0x4330000000000000LL);
  const __m256d two52 = _mm256_set1_pd(4503599627370496.0);
  const auto* ktab = reinterpret_cast<const long long*>(detail::kExpZig.k);

  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const DrawBlock block = next4_u64(s, inc);
    const __m256i jz = _mm256_srli_epi64(block.u, 11);
    const __m256i iz = _mm256_and_si256(block.u, mask8);
    const __m256i kv = _mm256_i64gather_epi64(ktab, iz, 8);
    const __m256i accept = _mm256_cmpgt_epi64(kv, jz);  // both < 2^62: signed ok
    if (_mm256_movemask_pd(_mm256_castsi256_pd(accept)) != 0xF) {
      rng.set_raw_state(s);
      out[i] = ziggurat_exponential(rng);
      out[i + 1] = ziggurat_exponential(rng);
      out[i + 2] = ziggurat_exponential(rng);
      out[i + 3] = ziggurat_exponential(rng);
      s = rng.raw_state();
      continue;
    }
    // jz is 53 bits — one bit past the mantissa-injection trick — so split
    // into bit 52 and the low 52 bits; both partial conversions and their
    // sum are exact (the sum is < 2^53).
    const __m256d d_lo = _mm256_sub_pd(
        _mm256_castsi256_pd(_mm256_or_si256(_mm256_and_si256(jz, mask52), exp52)), two52);
    const __m256d d_hi = _mm256_sub_pd(
        _mm256_castsi256_pd(_mm256_or_si256(_mm256_srli_epi64(jz, 52), exp52)), two52);
    const __m256d d = _mm256_add_pd(_mm256_mul_pd(d_hi, two52), d_lo);
    const __m256d w = _mm256_i64gather_pd(detail::kExpZig.w, iz, 8);
    _mm256_storeu_pd(out + i, _mm256_mul_pd(d, w));
    s = block.next_state;
  }
  rng.set_raw_state(s);
  for (; i < n; ++i) out[i] = ziggurat_exponential(rng);
}

// --- AVX-512 kernels --------------------------------------------------------
//
// W = 8 draws per block.  AVX512DQ supplies the three operations the AVX2
// arm has to emulate — native 64-bit lane multiply (vpmullq), arithmetic
// 64-bit shift, and exact int64 -> double conversion (vcvtqq2pd) — and the
// mask registers make the accept test and the PREFIX COMMIT cheap: on a
// rejection the accepted lanes before the first rejecting one are stored
// with a masked store (they are exactly the scalar stream), the RNG is
// positioned at the rejecting lane's draw, that one variate is re-drawn
// through the full scalar sampler, and the next block starts right after
// it.  Nothing accepted is ever recomputed, unlike the AVX2 arm's
// whole-block replay.

/// XSH-RR on eight 64-bit states, one 32-bit output per lane (low half).
/// XSH-RR output of eight states, with the rotated 32-bit result in the
/// LOW half of each lane and garbage above it (the pairing step shifts or
/// masks the garbage away).  The rotate is the native per-32-bit-element
/// variable rotate: the count t >> 59 sits in the lane's low element and
/// leaves the high element's count zero, so the low element is exactly
/// ror32(xorshifted, rot) and the garbage stays confined to the high half.
__attribute__((target("avx512f,avx512dq"))) inline __m512i pcg_output512_raw(__m512i t) {
  const __m512i x = _mm512_srli_epi64(_mm512_xor_si512(_mm512_srli_epi64(t, 18), t), 27);
  return _mm512_rorv_epi32(x, _mm512_srli_epi64(t, 59));
}

/// u64 draw j in lane j: (output(t_even) << 32) | output(t_odd), cleaning
/// the raw outputs' garbage halves in the same two instructions.
__attribute__((target("avx512f,avx512dq"))) inline __m512i pair_outputs512(__m512i t_even,
                                                                           __m512i t_odd) {
  const __m512i mask32 = _mm512_set1_epi64(0xffffffffLL);
  return _mm512_ternarylogic_epi64(_mm512_slli_epi64(pcg_output512_raw(t_even), 32),
                                   pcg_output512_raw(t_odd), mask32, 0xF8);
}

/// States t_{k0}, t_{k0+2}, ..., t_{k0+14} (k0 = 0) or the odd sequence
/// (k0 = 1) from scalar state `s`, via the pre-split jump constants.
__attribute__((target("avx512f,avx512dq"))) inline __m512i lcg_init512(
    std::uint64_t s, std::uint64_t inc, const std::uint64_t* mul, const std::uint64_t* add) {
  const __m512i sv = _mm512_set1_epi64(static_cast<long long>(s));
  const __m512i incv = _mm512_set1_epi64(static_cast<long long>(inc));
  return _mm512_add_epi64(_mm512_mullo_epi64(_mm512_load_si512(mul), sv),
                          _mm512_mullo_epi64(_mm512_load_si512(add), incv));
}

/// Jump every lane of a state vector by the same step count:
/// t' = a^k t + (a^{k-1} + ... + 1) inc, with a^k and the increment sum
/// pre-broadcast by the caller.
__attribute__((target("avx512f,avx512dq"))) inline __m512i lcg_advance512(__m512i t, __m512i a,
                                                                          __m512i c) {
  return _mm512_add_epi64(_mm512_mullo_epi64(t, a), c);
}

/// Lane 0 of a state vector (== the scalar state at the block head).
__attribute__((target("avx512f,avx512dq"))) inline std::uint64_t lane0(__m512i v) {
  return static_cast<std::uint64_t>(_mm_cvtsi128_si64(_mm512_castsi512_si128(v)));
}

/// Per-layer accept threshold and value scale, gathered for eight lanes.
/// Both tables are 2 KB and L1-resident, so vpgatherqq wins over manual
/// extract-and-insert assembly here (measured on the target Xeons).
struct GatheredTables {
  __m512i k;
  __m512d w;
};

__attribute__((target("avx512f,avx512dq"))) inline GatheredTables lookup_tables(
    __m512i iz, const std::uint64_t* ktab, const double* wtab) {
  return {_mm512_i64gather_epi64(iz, reinterpret_cast<const long long*>(ktab), 8),
          _mm512_i64gather_pd(iz, wtab, 8)};
}

/// One generation chunk: raw u64 draws cached ahead of consumption.
/// 1024 draws = 8 KB of scratch — small enough that scratch + tables +
/// a production-sized output block all stay L1-resident.
constexpr std::size_t kChunkU64 = 2048;

/// Phase 1 of the AVX-512 fill: write the next `m` u64 draws of the raw
/// PCG stream (m % 16 == 0) into `ubuf`, and the LCG state at the head of
/// each 16-draw block pair (plus the final state) into `heads`.  Branch-free and
/// rejection-free: the u64 stream is a pure function of the start state,
/// so the consume phase can take slow paths through the REAL RNG without
/// invalidating anything cached here.  Two blocks are kept in flight —
/// the carried vpmullq advance is ~15 cycles deep and one block's ~16
/// cheap ops cannot hide it alone.
__attribute__((target("avx512f,avx512dq"))) void generate_u64_stream(
    std::uint64_t s, std::uint64_t inc, std::uint64_t* ubuf, std::uint64_t* heads,
    std::size_t m) {
  const __m512i a16 = _mm512_set1_epi64(static_cast<long long>(kJump.mul[16]));
  const __m512i c16 = _mm512_set1_epi64(static_cast<long long>(kJump.add_unit[16] * inc));
  const __m512i a32 = _mm512_set1_epi64(static_cast<long long>(kJump.mul[32]));
  const __m512i c32 = _mm512_set1_epi64(static_cast<long long>(kJump.add_unit[32] * inc));
  __m512i t_even = lcg_init512(s, inc, kJumpV.mul_even, kJumpV.add_even);
  __m512i t_odd = lcg_init512(s, inc, kJumpV.mul_odd, kJumpV.add_odd);
  __m512i b_even = lcg_advance512(t_even, a16, c16);
  __m512i b_odd = lcg_advance512(t_odd, a16, c16);
  for (std::size_t b = 0; b < m / 8; b += 2) {
    heads[b / 2] = lane0(t_even);
    _mm512_store_si512(ubuf + 8 * b, pair_outputs512(t_even, t_odd));
    _mm512_store_si512(ubuf + 8 * b + 8, pair_outputs512(b_even, b_odd));
    t_even = lcg_advance512(t_even, a32, c32);
    t_odd = lcg_advance512(t_odd, a32, c32);
    b_even = lcg_advance512(b_even, a32, c32);
    b_odd = lcg_advance512(b_odd, a32, c32);
  }
  heads[m / 16] = lane0(t_even);
}

/// The LCG state just before draw `p` of the current chunk.  The jump
/// table reaches 32 steps, so one head per 16 draws is enough.
inline std::uint64_t state_at(const std::uint64_t* heads, std::size_t p, std::uint64_t inc) {
  const std::size_t o = 2 * (p % 16);
  return kJump.mul[o] * heads[p / 16] + kJump.add_unit[o] * inc;
}

/// Wedge decision `lhs < exp(t)` without the libm call on the hot path.
/// A degree-9 Taylor kernel after ln2 range reduction is good to ~2e-11
/// relative over the wedge range t in (-7.7, 0]; outside the +/-1e-10
/// ambiguity band around the approximation the decision provably equals
/// the std::exp one, and inside it (probability ~1e-8 per call) we defer
/// to std::exp itself.  Bit-exactness of the emitted stream only needs the
/// DECISION to match the scalar slow path — the accepted value is x, not
/// exp(t) — so this changes no output.
inline bool wedge_less_than_exp(double lhs, double t) {
  constexpr double kLog2E = 1.4426950408889634;
  constexpr double kLn2Hi = 0x1.62e42fefa39efp-1;
  constexpr double kLn2Lo = 0x1.abc9e3b39803fp-56;
  const double dn = __builtin_floor(t * kLog2E + 0.5);
  const double r = (t - dn * kLn2Hi) - dn * kLn2Lo;
  const double r2 = r * r;
  const double r4 = r2 * r2;
  // Taylor 1/k!, Estrin grouping to keep the dependency chain short.
  const double a = 1.0 + r;
  const double b = (1.0 / 2.0) + r * (1.0 / 6.0);
  const double c = (1.0 / 24.0) + r * (1.0 / 120.0);
  const double d = (1.0 / 720.0) + r * (1.0 / 5040.0);
  const double e = (1.0 / 40320.0) + r * (1.0 / 362880.0);
  const double poly = (a + r2 * b) + r4 * ((c + r2 * d) + r4 * e);
  // poly * 2^dn: dn in [-12, 0] here, so the exponent stays normal.
  std::uint64_t bits;
  std::memcpy(&bits, &poly, sizeof(bits));
  bits += static_cast<std::uint64_t>(static_cast<std::int64_t>(dn)) << 52;
  double approx;
  std::memcpy(&approx, &bits, sizeof(approx));
  const double eps = 1e-10 * approx;
  if (lhs < approx - eps) return true;
  if (lhs > approx + eps) return false;
  return lhs < std::exp(t);
}

/// Resolve one rejecting block: commit the accepted prefix, then run the
/// wedge/tail rejection algorithm directly against the cached u64 stream —
/// the slow path's extra draws are exactly positions q, q+1, ... of ubuf.
/// The scalar algorithm is memoryless given (hz, iz) at each iteration
/// top, so when the cached stream runs low we reposition the real RNG and
/// hand the current (hz, iz) to the out-of-line slow path, which finishes
/// identically.  Returns true when the RNG was synced that way (otherwise
/// the caller's position-based state recovery remains authoritative).
__attribute__((target("avx512f,avx512dq"))) inline bool resolve_reject_normal(
    des::Pcg32& rng, double* out, const std::uint64_t* ubuf, const std::uint64_t* heads,
    std::uint64_t inc, std::size_t m, std::size_t& i, std::size_t& p, __m512i u, __m512d value,
    __mmask8 accept) {
  const unsigned r = static_cast<unsigned>(
      __builtin_ctz(static_cast<unsigned>(~accept) & 0xFFu));
  _mm512_mask_storeu_pd(out + i, static_cast<__mmask8>((1u << r) - 1u), value);
  i += r;
  p += r;
  alignas(64) std::uint64_t lanes[8];
  _mm512_store_si512(lanes, u);
  const std::uint64_t uq = lanes[r];
  std::int64_t hz = static_cast<std::int64_t>(uq) >> 11;
  auto iz = static_cast<std::uint32_t>(uq & 255U);
  std::size_t q = p + 1;
  double val;
  bool synced = false;
  for (;;) {
    if (q + 2 > m) {
      rng.set_raw_state(state_at(heads, q, inc));
      std::uint32_t consumed = 0;
      val = detail::ziggurat_normal_slow(rng, hz, iz, &consumed);
      q += consumed;
      synced = true;
      break;
    }
    if (iz == 0) {
      const double x = -std::log(1.0 - static_cast<double>(ubuf[q] >> 11) * 0x1.0p-53) *
                       (1.0 / detail::kNormalZigR);
      const double y = -std::log(1.0 - static_cast<double>(ubuf[q + 1] >> 11) * 0x1.0p-53);
      q += 2;
      if (y + y < x * x) continue;
      val = hz > 0 ? detail::kNormalZigR + x : -(detail::kNormalZigR + x);
      break;
    }
    const double x = static_cast<double>(hz) * detail::kNormalZig.w[iz];
    const double u2 = static_cast<double>(ubuf[q] >> 11) * 0x1.0p-53;
    ++q;
    if (wedge_less_than_exp(
            detail::kNormalZig.f[iz] + u2 * (detail::kNormalZig.f[iz - 1] - detail::kNormalZig.f[iz]),
            -0.5 * x * x)) {
      val = x;
      break;
    }
    const std::uint64_t uu = ubuf[q];
    ++q;
    iz = static_cast<std::uint32_t>(uu & 255U);
    hz = static_cast<std::int64_t>(uu) >> 11;
    const auto az = static_cast<std::uint64_t>(hz < 0 ? -hz : hz);
    if (az < detail::kNormalZig.k[iz]) {
      val = static_cast<double>(hz) * detail::kNormalZig.w[iz];
      break;
    }
  }
  out[i] = val;
  ++i;
  p = q;
  return synced;
}

__attribute__((target("avx512f,avx512dq"))) inline bool resolve_reject_exponential(
    des::Pcg32& rng, double* out, const std::uint64_t* ubuf, const std::uint64_t* heads,
    std::uint64_t inc, std::size_t m, std::size_t& i, std::size_t& p, __m512i u, __m512d value,
    __mmask8 accept) {
  const unsigned r = static_cast<unsigned>(
      __builtin_ctz(static_cast<unsigned>(~accept) & 0xFFu));
  _mm512_mask_storeu_pd(out + i, static_cast<__mmask8>((1u << r) - 1u), value);
  i += r;
  p += r;
  alignas(64) std::uint64_t lanes[8];
  _mm512_store_si512(lanes, u);
  const std::uint64_t uq = lanes[r];
  std::uint64_t jz = uq >> 11;
  auto iz = static_cast<std::uint32_t>(uq & 255U);
  std::size_t q = p + 1;
  double val;
  bool synced = false;
  for (;;) {
    if (q + 2 > m) {
      rng.set_raw_state(state_at(heads, q, inc));
      std::uint32_t consumed = 0;
      val = detail::ziggurat_exponential_slow(rng, jz, iz, &consumed);
      q += consumed;
      synced = true;
      break;
    }
    if (iz == 0) {
      val = detail::kExpZigR -
            std::log(1.0 - static_cast<double>(ubuf[q] >> 11) * 0x1.0p-53);
      ++q;
      break;
    }
    const double x = static_cast<double>(jz) * detail::kExpZig.w[iz];
    const double u2 = static_cast<double>(ubuf[q] >> 11) * 0x1.0p-53;
    ++q;
    if (wedge_less_than_exp(
            detail::kExpZig.f[iz] + u2 * (detail::kExpZig.f[iz - 1] - detail::kExpZig.f[iz]),
            -x)) {
      val = x;
      break;
    }
    const std::uint64_t uu = ubuf[q];
    ++q;
    iz = static_cast<std::uint32_t>(uu & 255U);
    jz = uu >> 11;
    if (jz < detail::kExpZig.k[iz]) {
      val = static_cast<double>(jz) * detail::kExpZig.w[iz];
      break;
    }
  }
  out[i] = val;
  ++i;
  p = q;
  return synced;
}

/// How many u64 draws the chunk should hold: everything still needed plus
/// slow-path slack, rounded to the generator's 16-draw granularity and
/// capped at the scratch size.  Exhausting the slack early just triggers
/// another (small) regeneration — never an error.
inline std::size_t chunk_draws(std::size_t remaining) {
  const std::size_t want = (remaining + 32 + 15) & ~static_cast<std::size_t>(15);
  return want < kChunkU64 ? want : kChunkU64;
}

// Phase 2, shared shape (normal / exponential differ only in the mantissa
// extraction, table, and scalar fallback): consume the cached stream with
// NO loop-carried vector state.  The all-accept path is one unaligned
// load + table gathers + compare + convert + store; a rejecting lane
// repositions the real RNG from the recorded block heads, resolves the
// slow path scalar (consuming draws from the SAME stream), and advances
// the read pointer by however many draws that took — found by walking
// states forward until they match, typically one or two steps.

__attribute__((target("avx512f,avx512dq"))) void fill_normal_avx512(des::Pcg32& rng,
                                                                    double* out,
                                                                    std::size_t n) {
  const std::uint64_t inc = rng.raw_increment();
  std::size_t i = 0;
  if (n >= 8) {
    alignas(64) std::uint64_t ubuf[kChunkU64];
    alignas(64) std::uint64_t heads[kChunkU64 / 16 + 1];
    const __m512i mask8 = _mm512_set1_epi64(255);
    std::uint64_t s = rng.raw_state();
    while (n - i >= 8) {
      const std::size_t m = chunk_draws(n - i);
      generate_u64_stream(s, inc, ubuf, heads, m);
      std::size_t p = 0;
      bool rng_at_p = false;
      // Two blocks per iteration: one fused accept check covers 16 draws,
      // halving branch and bookkeeping cost on the dominant path.  The
      // pair-count is precomputed so the hot loop carries one counter; it
      // is re-derived after a rejection moves p by a variable amount.
      std::size_t iters = std::min((n - i) / 16, (m - p) / 16);
      while (iters != 0) {
        const __m512i u0 = _mm512_loadu_si512(ubuf + p);
        const __m512i u1 = _mm512_loadu_si512(ubuf + p + 8);
        const __m512i hz0 = _mm512_srai_epi64(u0, 11);
        const __m512i hz1 = _mm512_srai_epi64(u1, 11);
        const GatheredTables t0 = lookup_tables(_mm512_and_si512(u0, mask8),
                                                detail::kNormalZig.k, detail::kNormalZig.w);
        const GatheredTables t1 = lookup_tables(_mm512_and_si512(u1, mask8),
                                                detail::kNormalZig.k, detail::kNormalZig.w);
        // az and k are < 2^52, so the signed compare is an unsigned compare.
        const __mmask8 accept0 = _mm512_cmpgt_epi64_mask(t0.k, _mm512_abs_epi64(hz0));
        const __mmask8 accept1 = _mm512_cmpgt_epi64_mask(t1.k, _mm512_abs_epi64(hz1));
        // |hz| < 2^53: vcvtqq2pd is exact, so value * w matches the scalar
        // double(hz) * w[iz] bit for bit.
        const __m512d value0 = _mm512_mul_pd(_mm512_cvtepi64_pd(hz0), t0.w);
        const __m512d value1 = _mm512_mul_pd(_mm512_cvtepi64_pd(hz1), t1.w);
        if ((static_cast<unsigned>(accept0) | (static_cast<unsigned>(accept1) << 8)) ==
            0xFFFFu) {
          _mm512_storeu_pd(out + i, value0);
          _mm512_storeu_pd(out + i + 8, value1);
          i += 16;
          p += 16;
          --iters;
          rng_at_p = false;
          continue;
        }
        if (accept0 != 0xFF) {
          rng_at_p = resolve_reject_normal(rng, out, ubuf, heads, inc, m, i, p, u0, value0,
                                          accept0);
        } else {
          _mm512_storeu_pd(out + i, value0);
          i += 8;
          p += 8;
          rng_at_p = resolve_reject_normal(rng, out, ubuf, heads, inc, m, i, p, u1, value1,
                                          accept1);
        }
        iters = (p > m || n - i < 16) ? 0 : std::min((n - i) / 16, (m - p) / 16);
      }
      while (i + 8 <= n && p + 8 <= m) {
        const __m512i u = _mm512_loadu_si512(ubuf + p);
        const __m512i hz = _mm512_srai_epi64(u, 11);
        const GatheredTables t = lookup_tables(_mm512_and_si512(u, mask8),
                                               detail::kNormalZig.k, detail::kNormalZig.w);
        const __mmask8 accept = _mm512_cmpgt_epi64_mask(t.k, _mm512_abs_epi64(hz));
        const __m512d value = _mm512_mul_pd(_mm512_cvtepi64_pd(hz), t.w);
        if (accept == 0xFF) {
          _mm512_storeu_pd(out + i, value);
          i += 8;
          p += 8;
          rng_at_p = false;
          continue;
        }
        rng_at_p = resolve_reject_normal(rng, out, ubuf, heads, inc, m, i, p, u, value, accept);
      }
      s = rng_at_p ? rng.raw_state() : state_at(heads, p, inc);
    }
    rng.set_raw_state(s);
  }
  for (; i < n; ++i) out[i] = ziggurat_normal(rng);
}

__attribute__((target("avx512f,avx512dq"))) void fill_exponential_avx512(des::Pcg32& rng,
                                                                         double* out,
                                                                         std::size_t n) {
  const std::uint64_t inc = rng.raw_increment();
  std::size_t i = 0;
  if (n >= 8) {
    alignas(64) std::uint64_t ubuf[kChunkU64];
    alignas(64) std::uint64_t heads[kChunkU64 / 16 + 1];
    const __m512i mask8 = _mm512_set1_epi64(255);
    std::uint64_t s = rng.raw_state();
    while (n - i >= 8) {
      const std::size_t m = chunk_draws(n - i);
      generate_u64_stream(s, inc, ubuf, heads, m);
      std::size_t p = 0;
      bool rng_at_p = false;
      std::size_t iters = std::min((n - i) / 16, (m - p) / 16);
      while (iters != 0) {
        const __m512i u0 = _mm512_loadu_si512(ubuf + p);
        const __m512i u1 = _mm512_loadu_si512(ubuf + p + 8);
        const __m512i jz0 = _mm512_srli_epi64(u0, 11);
        const __m512i jz1 = _mm512_srli_epi64(u1, 11);
        const GatheredTables t0 = lookup_tables(_mm512_and_si512(u0, mask8),
                                                detail::kExpZig.k, detail::kExpZig.w);
        const GatheredTables t1 = lookup_tables(_mm512_and_si512(u1, mask8),
                                                detail::kExpZig.k, detail::kExpZig.w);
        const __mmask8 accept0 = _mm512_cmpgt_epi64_mask(t0.k, jz0);  // both < 2^62: signed ok
        const __mmask8 accept1 = _mm512_cmpgt_epi64_mask(t1.k, jz1);
        // jz < 2^53: vcvtuqq2pd is exact.
        const __m512d value0 = _mm512_mul_pd(_mm512_cvtepu64_pd(jz0), t0.w);
        const __m512d value1 = _mm512_mul_pd(_mm512_cvtepu64_pd(jz1), t1.w);
        if ((static_cast<unsigned>(accept0) | (static_cast<unsigned>(accept1) << 8)) ==
            0xFFFFu) {
          _mm512_storeu_pd(out + i, value0);
          _mm512_storeu_pd(out + i + 8, value1);
          i += 16;
          p += 16;
          --iters;
          rng_at_p = false;
          continue;
        }
        if (accept0 != 0xFF) {
          rng_at_p = resolve_reject_exponential(rng, out, ubuf, heads, inc, m, i, p, u0, value0,
                                          accept0);
        } else {
          _mm512_storeu_pd(out + i, value0);
          i += 8;
          p += 8;
          rng_at_p = resolve_reject_exponential(rng, out, ubuf, heads, inc, m, i, p, u1, value1,
                                          accept1);
        }
        iters = (p > m || n - i < 16) ? 0 : std::min((n - i) / 16, (m - p) / 16);
      }
      while (i + 8 <= n && p + 8 <= m) {
        const __m512i u = _mm512_loadu_si512(ubuf + p);
        const __m512i jz = _mm512_srli_epi64(u, 11);
        const GatheredTables t = lookup_tables(_mm512_and_si512(u, mask8),
                                               detail::kExpZig.k, detail::kExpZig.w);
        const __mmask8 accept = _mm512_cmpgt_epi64_mask(t.k, jz);  // both < 2^62: signed ok
        const __m512d value = _mm512_mul_pd(_mm512_cvtepu64_pd(jz), t.w);
        if (accept == 0xFF) {
          _mm512_storeu_pd(out + i, value);
          i += 8;
          p += 8;
          rng_at_p = false;
          continue;
        }
        rng_at_p = resolve_reject_exponential(rng, out, ubuf, heads, inc, m, i, p, u, value, accept);
      }
      s = rng_at_p ? rng.raw_state() : state_at(heads, p, inc);
    }
    rng.set_raw_state(s);
  }
  for (; i < n; ++i) out[i] = ziggurat_exponential(rng);
}

#endif  // PARADYN_ZIG_X86

// --- Dispatch ---------------------------------------------------------------

enum Arm : int { kUnresolved = -1, kScalar = 0, kAvx2 = 1, kAvx512 = 2 };

std::atomic<int> g_arm{kUnresolved};

/// Best arm this CPU can run (independent of any override).
int best_arm() noexcept {
#if PARADYN_ZIG_X86
  if (__builtin_cpu_supports("avx512f") != 0 && __builtin_cpu_supports("avx512dq") != 0) {
    return kAvx512;
  }
  if (__builtin_cpu_supports("avx2") != 0) return kAvx2;
#endif
  return kScalar;
}

int resolve_arm() noexcept {
  int arm = g_arm.load(std::memory_order_relaxed);
  if (arm != kUnresolved) return arm;
  arm = best_arm();
  if (const char* env = std::getenv("PARADYN_BATCH_DISPATCH"); env != nullptr) {
    // The env var can only LOWER the arm — it names the ceiling, so a CI
    // leg pinned to "scalar" or "avx2" runs that arm on any hardware that
    // has it, and is a no-op where the hardware tops out lower anyway.
    if (std::strcmp(env, "scalar") == 0) {
      arm = kScalar;
    } else if (std::strcmp(env, "avx2") == 0 && arm > kAvx2) {
      arm = kAvx2;
    }
  }
  g_arm.store(arm, std::memory_order_relaxed);
  return arm;
}

}  // namespace

void set_batch_dispatch(BatchDispatch dispatch) noexcept {
  int arm = best_arm();
  if (dispatch == BatchDispatch::ForceScalar) {
    arm = kScalar;
  } else if (dispatch == BatchDispatch::CapAvx2 && arm > kAvx2) {
    arm = kAvx2;
  }
  g_arm.store(arm, std::memory_order_relaxed);
}

const char* batch_dispatch_active() noexcept {
  switch (resolve_arm()) {
    case kAvx512:
      return "avx512";
    case kAvx2:
      return "avx2";
    default:
      return "scalar";
  }
}

void ziggurat_normal_fill(des::Pcg32& rng, double* out, std::size_t n) {
#if PARADYN_ZIG_X86
  switch (resolve_arm()) {
    case kAvx512:
      fill_normal_avx512(rng, out, n);
      return;
    case kAvx2:
      fill_normal_avx2(rng, out, n);
      return;
    default:
      break;
  }
#endif
  fill_normal_scalar(rng, out, n);
}

void ziggurat_exponential_fill(des::Pcg32& rng, double* out, std::size_t n) {
#if PARADYN_ZIG_X86
  switch (resolve_arm()) {
    case kAvx512:
      fill_exponential_avx512(rng, out, n);
      return;
    case kAvx2:
      fill_exponential_avx2(rng, out, n);
      return;
    default:
      break;
  }
#endif
  fill_exponential_scalar(rng, out, n);
}

}  // namespace paradyn::stats
