// Special functions needed by the distribution / inference code.
//
// Self-contained implementations (no external math library): standard
// normal pdf/cdf/quantile, regularized incomplete beta and gamma functions,
// and Student-t distribution functions built on them.
#pragma once

namespace paradyn::stats {

/// Standard normal probability density.
[[nodiscard]] double normal_pdf(double z);

/// Standard normal CDF, accurate over the full double range.
[[nodiscard]] double normal_cdf(double z);

/// Inverse standard normal CDF (Acklam's rational approximation refined by
/// one Halley step; |error| < 1e-12 for p in (0, 1)).
[[nodiscard]] double normal_quantile(double p);

/// Regularized lower incomplete gamma P(a, x).
[[nodiscard]] double regularized_gamma_p(double a, double x);

/// Regularized incomplete beta I_x(a, b) via continued fraction.
[[nodiscard]] double regularized_beta(double x, double a, double b);

/// Student-t CDF with `df` degrees of freedom.
[[nodiscard]] double student_t_cdf(double t, double df);

/// Student-t quantile (inverse CDF) with `df` degrees of freedom.
[[nodiscard]] double student_t_quantile(double p, double df);

}  // namespace paradyn::stats
