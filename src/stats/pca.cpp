#include "stats/pca.hpp"

#include <cmath>
#include <stdexcept>

namespace paradyn::stats {

PcaResult pca(const Matrix& data, bool standardize) {
  const std::size_t n = data.rows();
  const std::size_t k = data.cols();
  if (n < 2) throw std::invalid_argument("pca: need at least 2 observations");
  if (k == 0) throw std::invalid_argument("pca: need at least 1 variable");

  PcaResult result;
  result.column_means.assign(k, 0.0);
  result.column_scales.assign(k, 1.0);

  for (std::size_t c = 0; c < k; ++c) {
    double mean = 0.0;
    for (std::size_t r = 0; r < n; ++r) mean += data(r, c);
    result.column_means[c] = mean / static_cast<double>(n);
  }
  if (standardize) {
    for (std::size_t c = 0; c < k; ++c) {
      double ss = 0.0;
      for (std::size_t r = 0; r < n; ++r) {
        const double d = data(r, c) - result.column_means[c];
        ss += d * d;
      }
      const double var = ss / static_cast<double>(n - 1);
      result.column_scales[c] = (var > 0.0) ? std::sqrt(var) : 1.0;
    }
  }

  // Covariance (or correlation) matrix of the centered/scaled data.
  Matrix cov(k, k, 0.0);
  for (std::size_t i = 0; i < k; ++i) {
    for (std::size_t j = i; j < k; ++j) {
      double acc = 0.0;
      for (std::size_t r = 0; r < n; ++r) {
        const double a = (data(r, i) - result.column_means[i]) / result.column_scales[i];
        const double b = (data(r, j) - result.column_means[j]) / result.column_scales[j];
        acc += a * b;
      }
      const double v = acc / static_cast<double>(n - 1);
      cov(i, j) = v;
      cov(j, i) = v;
    }
  }

  EigenResult eig = jacobi_eigen(cov);
  result.eigenvalues = eig.values;
  result.components = std::move(eig.vectors);

  double total = 0.0;
  for (const double v : result.eigenvalues) total += std::max(v, 0.0);
  result.explained_fraction.reserve(k);
  for (const double v : result.eigenvalues) {
    result.explained_fraction.push_back(total > 0.0 ? std::max(v, 0.0) / total : 0.0);
  }
  return result;
}

std::vector<double> pca_project(const PcaResult& model, const std::vector<double>& observation,
                                std::size_t n_components) {
  const std::size_t k = model.column_means.size();
  if (observation.size() != k) throw std::invalid_argument("pca_project: dimension mismatch");
  n_components = std::min(n_components, k);
  std::vector<double> out(n_components, 0.0);
  for (std::size_t c = 0; c < n_components; ++c) {
    double acc = 0.0;
    for (std::size_t i = 0; i < k; ++i) {
      const double z = (observation[i] - model.column_means[i]) / model.column_scales[i];
      acc += z * model.components(i, c);
    }
    out[c] = acc;
  }
  return out;
}

}  // namespace paradyn::stats
