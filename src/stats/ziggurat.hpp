// Ziggurat random-variate generation (Marsaglia & Tsang 2000).
//
// The ROCC hot loop draws a normal or exponential variate for nearly every
// occupancy request.  Box-Muller costs two transcendentals (sqrt, cos, log)
// per normal; inverse-CDF costs one log per exponential.  The ziggurat
// covers the density with 256 horizontal layers so that ~98.5% of draws
// need only one 64-bit PCG draw, one table compare, and one multiply — no
// division, no transcendental on the common path.
//
// Layout per draw (one Pcg32::next_u64()):
//   bits 0..7    layer index (256 layers)
//   bits 11..63  53-bit variate mantissa (signed for the normal — bit 63 is
//                the sign via arithmetic shift; unsigned for the exponential)
// The index and mantissa bits do not overlap, unlike the classic 32-bit
// formulation which reuses the low bits of the value as the index.
//
// Tables are built once at static-initialization time from the standard
// 256-layer constants (normal r = 3.6541528853610088, exponential
// r = 7.697117470131487); the rejection slow path lives in ziggurat.cpp.
#pragma once

#include <cstdint>

#include "des/random.hpp"

namespace paradyn::stats {

namespace detail {

/// One ziggurat: per-layer accept thresholds `k` (scaled integer), value
/// scale factors `w`, and density ordinates `f`.
struct ZigguratTable {
  std::uint64_t k[256];
  double w[256];
  double f[256];
};

// Built during static initialization (plain aggregate dynamic init, no
// per-call guard).  Everything that samples runs long after main() starts,
// so static-init ordering against these is not a concern in practice.
extern const ZigguratTable kNormalZig;
extern const ZigguratTable kExpZig;

/// Base-layer x coordinate: the start of each distribution's tail.
inline constexpr double kNormalZigR = 3.6541528853610088;
inline constexpr double kExpZigR = 7.697117470131487;

/// Rejection paths: wedge test against the density, or tail sampling when
/// the draw landed in layer 0.  Out of line — together they handle < 2% of
/// draws.  When `consumed` is non-null it receives the number of extra u64
/// draws taken from `rng`, so batch kernels can advance their cached-stream
/// cursor without replaying LCG states.
[[nodiscard]] double ziggurat_normal_slow(des::Pcg32& rng, std::int64_t hz, std::uint32_t iz,
                                          std::uint32_t* consumed = nullptr);
[[nodiscard]] double ziggurat_exponential_slow(des::Pcg32& rng, std::uint64_t jz,
                                               std::uint32_t iz,
                                               std::uint32_t* consumed = nullptr);

}  // namespace detail

/// Standard normal variate via the 256-layer ziggurat.  Statistically
/// equivalent to sample_standard_normal (Box-Muller) but a different —
/// and much cheaper — draw sequence.
[[nodiscard]] inline double ziggurat_normal(des::Pcg32& rng) {
  const std::uint64_t u = rng.next_u64();
  const auto iz = static_cast<std::uint32_t>(u & 255U);
  // Arithmetic shift: bit 63 becomes the sign, bits 11..62 the magnitude.
  const std::int64_t hz = static_cast<std::int64_t>(u) >> 11;
  const auto az = static_cast<std::uint64_t>(hz < 0 ? -hz : hz);
  if (az < detail::kNormalZig.k[iz]) {
    return static_cast<double>(hz) * detail::kNormalZig.w[iz];
  }
  return detail::ziggurat_normal_slow(rng, hz, iz);
}

/// Unit-mean exponential variate via the 256-layer ziggurat.
[[nodiscard]] inline double ziggurat_exponential(des::Pcg32& rng) {
  const std::uint64_t u = rng.next_u64();
  const auto iz = static_cast<std::uint32_t>(u & 255U);
  const std::uint64_t jz = u >> 11;
  if (jz < detail::kExpZig.k[iz]) {
    return static_cast<double>(jz) * detail::kExpZig.w[iz];
  }
  return detail::ziggurat_exponential_slow(rng, jz, iz);
}

// --- Batch generation (ziggurat_batch.cpp) ---------------------------------
//
// The fill kernels produce exactly the stream the scalar loop
// `for (i) out[i] = ziggurat_*(rng)` would — bit for bit, including the
// RNG state left behind — regardless of which instruction set executes
// them.
//
// The AVX-512 arm (needs AVX512F+DQ for the 64-bit multiply and the
// exact int64 -> double conversion) runs in two phases per 2048-draw
// chunk.  Phase 1 bulk-generates the raw u64 stream branch-free into a
// scratch buffer, recording an LCG head state every 16 draws.  Phase 2
// consumes the buffer 16 draws at a time: decode, table lookup
// (hardware gather), fused accept test across two 8-lane blocks, and a
// masked store of the accepted prefix.  On a rejection the resolver
// runs the scalar rejection algorithm but reads its extra draws
// directly from the already-generated buffer — the slow path is
// memoryless given (hz, iz), so when it would outrun the buffer the
// resolver reconstructs the exact RNG state from the nearest head via
// precomputed LCG jump coefficients and falls back to the out-of-line
// scalar routine, which reports how many draws it consumed.  Either
// way a rejection consumes its extra draws exactly where the scalar
// loop would.  The AVX2 arm (4 lanes) is single-phase speculative: it
// advances 8 LCG lanes from a block-head snapshot, commits all-accept
// blocks, and replays any rejecting block scalar from the snapshot.

/// Which batch kernel implementation the fill functions run.
enum class BatchDispatch : std::uint8_t {
  Auto,         ///< Best supported arm: AVX-512, else AVX2, else scalar.
  ForceScalar,  ///< Scalar always (the CI fallback leg and A/B testing).
  CapAvx2,      ///< At most the AVX2 arm (exercises the mid tier on
                ///< AVX-512 hardware; scalar where AVX2 is missing).
};

/// Override the batch dispatch policy (process-wide).  The default is
/// Auto, unless the environment variable PARADYN_BATCH_DISPATCH forced a
/// lower arm at first use ("scalar" or "avx2").
void set_batch_dispatch(BatchDispatch dispatch) noexcept;

/// The kernel the next fill call will run: "avx512", "avx2" or "scalar".
[[nodiscard]] const char* batch_dispatch_active() noexcept;

/// Fill out[0..n) with standard-normal variates; bit-identical to n calls
/// of ziggurat_normal(rng).
void ziggurat_normal_fill(des::Pcg32& rng, double* out, std::size_t n);

/// Fill out[0..n) with unit-mean exponential variates; bit-identical to n
/// calls of ziggurat_exponential(rng).
void ziggurat_exponential_fill(des::Pcg32& rng, double* out, std::size_t n);

}  // namespace paradyn::stats
