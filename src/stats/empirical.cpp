#include "stats/empirical.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

#include "stats/summary.hpp"

namespace paradyn::stats {

Empirical::Empirical(std::span<const double> data) : sorted_(data.begin(), data.end()) {
  if (sorted_.size() < 2) {
    throw std::invalid_argument("Empirical: need at least 2 observations");
  }
  std::sort(sorted_.begin(), sorted_.end());
  const SummaryStats s = summarize(sorted_);
  mean_ = s.mean();
  variance_ = s.variance();
}

std::string Empirical::describe() const {
  std::ostringstream os;
  os << "empirical(n=" << sorted_.size() << ", mean=" << mean_ << ")";
  return os.str();
}

double Empirical::cdf(double x) const {
  if (x <= sorted_.front()) return 0.0;
  if (x >= sorted_.back()) return 1.0;
  // F(x_(i)) = (i) / (n-1) with linear interpolation between order
  // statistics (the continuous empirical CDF of Law & Kelton).
  const auto n = sorted_.size();
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  const auto i = static_cast<std::size_t>(it - sorted_.begin());  // x_(i-1) <= x < x_(i)
  const double lo = sorted_[i - 1];
  const double hi = sorted_[i];
  const double base = static_cast<double>(i - 1) / static_cast<double>(n - 1);
  const double step = 1.0 / static_cast<double>(n - 1);
  const double frac = (hi > lo) ? (x - lo) / (hi - lo) : 0.0;
  return base + frac * step;
}

double Empirical::pdf(double x) const {
  if (x < sorted_.front() || x > sorted_.back()) return 0.0;
  const auto n = sorted_.size();
  auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  if (it == sorted_.begin()) ++it;
  if (it == sorted_.end()) --it;
  const auto i = static_cast<std::size_t>(it - sorted_.begin());
  const double lo = sorted_[i - 1];
  const double hi = sorted_[i];
  if (hi <= lo) return 0.0;  // tied order statistics: density spike, report 0
  return (1.0 / static_cast<double>(n - 1)) / (hi - lo);
}

double Empirical::quantile(double p) const {
  if (!(p >= 0.0 && p <= 1.0)) throw std::invalid_argument("Empirical::quantile: p in [0,1]");
  const auto n = sorted_.size();
  const double h = p * static_cast<double>(n - 1);
  const auto i = static_cast<std::size_t>(std::floor(h));
  if (i + 1 >= n) return sorted_.back();
  const double frac = h - std::floor(h);
  return sorted_[i] + frac * (sorted_[i + 1] - sorted_[i]);
}

double Empirical::sample(des::Pcg32& rng) const { return quantile(rng.next_double()); }

}  // namespace paradyn::stats
