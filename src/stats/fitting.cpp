#include "stats/fitting.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "stats/ks_test.hpp"
#include "stats/special_functions.hpp"
#include "stats/summary.hpp"

namespace paradyn::stats {
namespace {

void require_positive_data(std::span<const double> data, const char* who) {
  if (data.empty()) throw std::invalid_argument(std::string(who) + ": empty data");
  for (const double x : data) {
    if (!(x > 0.0)) throw std::invalid_argument(std::string(who) + ": data must be positive");
  }
}

}  // namespace

Exponential fit_exponential(std::span<const double> data) {
  require_positive_data(data, "fit_exponential");
  return Exponential(summarize(data).mean());
}

Lognormal fit_lognormal(std::span<const double> data) {
  require_positive_data(data, "fit_lognormal");
  SummaryStats logs;
  for (const double x : data) logs.add(std::log(x));
  // MLE sigma uses the n-denominator variance.
  const auto n = static_cast<double>(logs.count());
  double sigma2 = logs.variance() * (n - 1.0) / n;
  sigma2 = std::max(sigma2, 1e-12);
  return Lognormal(logs.mean(), std::sqrt(sigma2));
}

Weibull fit_weibull(std::span<const double> data) {
  require_positive_data(data, "fit_weibull");
  const auto n = static_cast<double>(data.size());

  // Precompute log moments for the profile-likelihood equation
  //   1/k = sum(x^k ln x)/sum(x^k) - mean(ln x)
  double mean_log = 0.0;
  for (const double x : data) mean_log += std::log(x);
  mean_log /= n;

  // Newton iteration on g(k) = sum(x^k ln x)/sum(x^k) - 1/k - mean_log.
  double k = 1.0;  // exponential start
  for (int iter = 0; iter < 100; ++iter) {
    double s0 = 0.0;
    double s1 = 0.0;
    double s2 = 0.0;
    for (const double x : data) {
      const double lx = std::log(x);
      const double xk = std::pow(x, k);
      s0 += xk;
      s1 += xk * lx;
      s2 += xk * lx * lx;
    }
    const double g = s1 / s0 - 1.0 / k - mean_log;
    const double gprime = (s2 * s0 - s1 * s1) / (s0 * s0) + 1.0 / (k * k);
    const double step = g / gprime;
    k -= step;
    if (!(k > 0.0)) {
      k = 1e-3;  // recover from an overshoot; likelihood is unimodal in k
    }
    if (std::fabs(step) < 1e-10 * std::max(1.0, k)) break;
  }

  double sum_xk = 0.0;
  for (const double x : data) sum_xk += std::pow(x, k);
  const double scale = std::pow(sum_xk / n, 1.0 / k);
  return Weibull(k, scale);
}

double ks_statistic(std::span<const double> data, const Distribution& dist) {
  return ks_test(data, dist).statistic;
}

ChiSquareResult chi_square_test(std::span<const double> data, const Distribution& dist,
                                std::size_t bins, std::size_t params_estimated) {
  if (bins < 2) throw std::invalid_argument("chi_square_test: need at least 2 bins");
  if (data.size() < 5 * bins) {
    throw std::invalid_argument("chi_square_test: need >= 5 observations per bin");
  }
  if (params_estimated + 1 >= bins) {
    throw std::invalid_argument("chi_square_test: no degrees of freedom left");
  }

  // Equal-probability cells: boundaries at the model's quantiles.
  std::vector<double> boundaries;
  boundaries.reserve(bins - 1);
  for (std::size_t i = 1; i < bins; ++i) {
    boundaries.push_back(dist.quantile(static_cast<double>(i) / static_cast<double>(bins)));
  }
  std::vector<std::size_t> observed(bins, 0);
  for (const double x : data) {
    const auto it = std::upper_bound(boundaries.begin(), boundaries.end(), x);
    ++observed[static_cast<std::size_t>(it - boundaries.begin())];
  }

  const double expected = static_cast<double>(data.size()) / static_cast<double>(bins);
  ChiSquareResult result;
  result.bins = bins;
  for (const std::size_t o : observed) {
    const double d = static_cast<double>(o) - expected;
    result.statistic += d * d / expected;
  }
  result.degrees_of_freedom =
      static_cast<double>(bins - 1 - params_estimated);
  // P(X^2 >= stat) = 1 - P(df/2, stat/2) via the regularized gamma.
  result.p_value =
      1.0 - regularized_gamma_p(result.degrees_of_freedom / 2.0, result.statistic / 2.0);
  return result;
}

std::vector<FitResult> fit_candidates(std::span<const double> data) {
  std::vector<FitResult> results;
  const auto add = [&](DistributionPtr dist) {
    FitResult r;
    r.log_likelihood = dist->log_likelihood(data);
    r.ks = ks_statistic(data, *dist);
    r.distribution = std::move(dist);
    results.push_back(std::move(r));
  };
  add(std::make_shared<Exponential>(fit_exponential(data)));
  add(std::make_shared<Lognormal>(fit_lognormal(data)));
  add(std::make_shared<Weibull>(fit_weibull(data)));
  std::sort(results.begin(), results.end(),
            [](const FitResult& a, const FitResult& b) {
              return a.log_likelihood > b.log_likelihood;
            });
  return results;
}

FitResult fit_best(std::span<const double> data) { return fit_candidates(data).front(); }

}  // namespace paradyn::stats
