// Principal component analysis.
//
// The paper's "PCA" percentages (Figures 16/20/25, Tables 7/8) are in fact
// the 2^k r factorial *allocation of variation* — see factorial.hpp.  This
// module provides a genuine eigen-decomposition PCA as well, used as a
// cross-check and offered as part of the public statistics API.
#pragma once

#include <cstddef>
#include <vector>

#include "stats/matrix.hpp"

namespace paradyn::stats {

struct PcaResult {
  std::vector<double> eigenvalues;          ///< Descending.
  Matrix components;                        ///< Column i: loading vector of PC i.
  std::vector<double> explained_fraction;   ///< eigenvalue_i / sum(eigenvalues).
  std::vector<double> column_means;         ///< Per-variable centering offsets.
  std::vector<double> column_scales;        ///< Per-variable scaling (1 if not standardized).
};

/// PCA of a data matrix (rows = observations, columns = variables).
/// If `standardize` is true the correlation matrix is used (each column
/// scaled to unit variance), otherwise the covariance matrix.
[[nodiscard]] PcaResult pca(const Matrix& data, bool standardize = true);

/// Project an observation (length = #variables) onto the first
/// `n_components` principal axes.
[[nodiscard]] std::vector<double> pca_project(const PcaResult& model,
                                              const std::vector<double>& observation,
                                              std::size_t n_components);

}  // namespace paradyn::stats
