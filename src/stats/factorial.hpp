// 2^k r factorial experiment design and allocation of variation.
//
// The paper (Section 4.1) uses Jain's 2^k r factorial technique with k = 4
// factors and r replications, then reports the *percentage of variation
// explained* by each factor and factor interaction (Figures 16, 20, 25 and
// Tables 7, 8 — which the paper labels "principal component analysis").
//
// Implementation follows Jain, "The Art of Computer Systems Performance
// Analysis", chs. 17-18: a sign table over the 2^k cells yields the effect
// q_j of every factor subset; SS_j = 2^k * r * q_j^2; experimental error is
// SSE = sum over cells of within-cell variation; the fraction SS_j / SST is
// the variation explained.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace paradyn::stats {

/// One estimated effect (a factor or interaction) from a 2^k r design.
struct FactorialEffect {
  /// Bitmask over factors; bit i set means factor i participates.  The mask
  /// 0 (grand mean) is not reported as an effect.
  unsigned mask = 0;
  /// Human-readable label: "A", "B", "AB", "ABC", ...
  std::string label;
  /// The effect magnitude q_j.
  double effect = 0.0;
  /// Sum of squares attributed to this effect.
  double sum_of_squares = 0.0;
  /// Fraction of total variation explained, in [0, 1].
  double variation_fraction = 0.0;
};

/// Full analysis output.
struct FactorialAnalysis {
  double grand_mean = 0.0;
  std::vector<FactorialEffect> effects;  ///< Sorted by descending variation.
  double sse = 0.0;                      ///< Experimental (replication) error.
  double sst = 0.0;                      ///< Total variation.
  double error_fraction = 0.0;           ///< SSE / SST.

  /// Look up an effect by label ("A", "BC", ...); throws if absent.
  [[nodiscard]] const FactorialEffect& effect(const std::string& label) const;
};

/// Collects responses of a 2^k r design and analyzes them.
class FactorialDesign {
 public:
  /// `factor_names[i]` is the name of factor i; its sign-table letter is
  /// 'A' + i.  `replications` is r (>= 1; >= 2 required for SSE > 0).
  FactorialDesign(std::vector<std::string> factor_names, std::size_t replications);

  [[nodiscard]] std::size_t num_factors() const noexcept { return names_.size(); }
  [[nodiscard]] std::size_t num_cells() const noexcept { return std::size_t{1} << names_.size(); }
  [[nodiscard]] std::size_t replications() const noexcept { return reps_; }
  [[nodiscard]] const std::vector<std::string>& factor_names() const noexcept { return names_; }

  /// Record the response of replication `rep` in the cell addressed by
  /// `cell_mask` (bit i set = factor i at its high level).
  void set_response(unsigned cell_mask, std::size_t rep, double y);

  /// True once every (cell, rep) slot has been filled.
  [[nodiscard]] bool complete() const noexcept;

  /// Run the sign-table analysis.  Throws std::logic_error if incomplete.
  [[nodiscard]] FactorialAnalysis analyze() const;

  /// Label for a factor-subset bitmask, e.g. mask 0b101 -> "AC".
  [[nodiscard]] static std::string mask_label(unsigned mask);

 private:
  std::vector<std::string> names_;
  std::size_t reps_;
  std::vector<std::vector<double>> responses_;  // [cell][rep]
  std::vector<std::vector<bool>> filled_;
};

}  // namespace paradyn::stats
