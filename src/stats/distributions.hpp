// Probability distributions used by the ROCC workload model.
//
// The paper's workload characterization (Section 2.3.2, Tables 1-2) fits
// exponential, lognormal, and Weibull densities to the lengths of resource
// occupancy requests.  Every distribution here supports sampling (by
// inverse-CDF or Box-Muller on our own RNG, for cross-platform determinism),
// pdf/cdf/quantile evaluation, and log-likelihood — everything needed by the
// fitting code and the simulator.
//
// NOTE on lognormal parameters: the paper writes "lognormal(a, b) means a
// lognormal random variable with mean a and variance b", but the values
// quoted (e.g. lognormal(2213, 3034) for application CPU requests) are the
// sample mean and sample *standard deviation* of Table 1.  We therefore
// provide Lognormal::from_mean_stddev and use it wherever Table 2 parameters
// are instantiated.
#pragma once

#include <memory>
#include <span>
#include <string>

#include "des/random.hpp"

namespace paradyn::stats {

/// Abstract interface for a univariate distribution over [0, inf) or R.
class Distribution {
 public:
  virtual ~Distribution() = default;

  /// Distribution family name, e.g. "exponential".
  [[nodiscard]] virtual std::string name() const = 0;
  /// Human-readable parameterization, e.g. "exponential(mean=223)".
  [[nodiscard]] virtual std::string describe() const = 0;

  [[nodiscard]] virtual double mean() const = 0;
  [[nodiscard]] virtual double variance() const = 0;
  [[nodiscard]] virtual double pdf(double x) const = 0;
  /// log pdf(x), computed in log space.  The default falls back to
  /// log(pdf(x)); families override it so densities too small for a double
  /// (denormal or underflowed pdf on far-tail data) still yield a finite
  /// log instead of collapsing to -inf.
  [[nodiscard]] virtual double log_pdf(double x) const;
  [[nodiscard]] virtual double cdf(double x) const = 0;
  /// Inverse CDF; p in (0, 1).
  [[nodiscard]] virtual double quantile(double p) const = 0;
  /// Draw one variate.
  [[nodiscard]] virtual double sample(des::Pcg32& rng) const = 0;

  /// Sum of log_pdf over the data (for model selection).  Summed in log
  /// space, so large samples with extreme observations cannot hit -inf
  /// unless a point truly has zero density.
  [[nodiscard]] double log_likelihood(std::span<const double> data) const;

  [[nodiscard]] double stddev() const;
};

using DistributionPtr = std::shared_ptr<const Distribution>;

/// Exponential(mean): pdf(x) = (1/mean) exp(-x/mean), x >= 0.
class Exponential final : public Distribution {
 public:
  explicit Exponential(double mean);

  [[nodiscard]] std::string name() const override { return "exponential"; }
  [[nodiscard]] std::string describe() const override;
  [[nodiscard]] double mean() const override { return mean_; }
  [[nodiscard]] double variance() const override { return mean_ * mean_; }
  [[nodiscard]] double pdf(double x) const override;
  [[nodiscard]] double log_pdf(double x) const override;
  [[nodiscard]] double cdf(double x) const override;
  [[nodiscard]] double quantile(double p) const override;
  [[nodiscard]] double sample(des::Pcg32& rng) const override;

 private:
  double mean_;
};

/// Lognormal with underlying normal(mu, sigma): X = exp(N(mu, sigma^2)).
class Lognormal final : public Distribution {
 public:
  /// Construct from the underlying normal parameters.
  Lognormal(double mu, double sigma);

  /// Construct from the target mean and standard deviation of X itself —
  /// the parameterization used in the paper's Table 2.
  [[nodiscard]] static Lognormal from_mean_stddev(double mean, double stddev);

  [[nodiscard]] std::string name() const override { return "lognormal"; }
  [[nodiscard]] std::string describe() const override;
  [[nodiscard]] double mean() const override;
  [[nodiscard]] double variance() const override;
  [[nodiscard]] double pdf(double x) const override;
  [[nodiscard]] double log_pdf(double x) const override;
  [[nodiscard]] double cdf(double x) const override;
  [[nodiscard]] double quantile(double p) const override;
  [[nodiscard]] double sample(des::Pcg32& rng) const override;

  [[nodiscard]] double mu() const { return mu_; }
  [[nodiscard]] double sigma() const { return sigma_; }

 private:
  double mu_;
  double sigma_;
};

/// Weibull(shape k, scale lambda): cdf(x) = 1 - exp(-(x/lambda)^k), x >= 0.
class Weibull final : public Distribution {
 public:
  Weibull(double shape, double scale);

  [[nodiscard]] std::string name() const override { return "weibull"; }
  [[nodiscard]] std::string describe() const override;
  [[nodiscard]] double mean() const override;
  [[nodiscard]] double variance() const override;
  [[nodiscard]] double pdf(double x) const override;
  [[nodiscard]] double log_pdf(double x) const override;
  [[nodiscard]] double cdf(double x) const override;
  [[nodiscard]] double quantile(double p) const override;
  [[nodiscard]] double sample(des::Pcg32& rng) const override;

  [[nodiscard]] double shape() const { return shape_; }
  [[nodiscard]] double scale() const { return scale_; }

 private:
  double shape_;
  double scale_;
};

/// Uniform(lo, hi).
class Uniform final : public Distribution {
 public:
  Uniform(double lo, double hi);

  [[nodiscard]] std::string name() const override { return "uniform"; }
  [[nodiscard]] std::string describe() const override;
  [[nodiscard]] double mean() const override { return 0.5 * (lo_ + hi_); }
  [[nodiscard]] double variance() const override;
  [[nodiscard]] double pdf(double x) const override;
  [[nodiscard]] double log_pdf(double x) const override;
  [[nodiscard]] double cdf(double x) const override;
  [[nodiscard]] double quantile(double p) const override;
  [[nodiscard]] double sample(des::Pcg32& rng) const override;

 private:
  double lo_;
  double hi_;
};

/// Degenerate distribution: always returns `value`.  Useful for replacing a
/// stochastic model input with a fixed value in ablations and tests.
class Deterministic final : public Distribution {
 public:
  explicit Deterministic(double value);

  [[nodiscard]] std::string name() const override { return "deterministic"; }
  [[nodiscard]] std::string describe() const override;
  [[nodiscard]] double mean() const override { return value_; }
  [[nodiscard]] double variance() const override { return 0.0; }
  [[nodiscard]] double pdf(double x) const override;
  [[nodiscard]] double log_pdf(double x) const override;
  [[nodiscard]] double cdf(double x) const override;
  [[nodiscard]] double quantile(double p) const override;
  [[nodiscard]] double sample(des::Pcg32& rng) const override;

 private:
  double value_;
};

/// Draw a standard normal via Box-Muller (deterministic on our RNG).
[[nodiscard]] double sample_standard_normal(des::Pcg32& rng);

}  // namespace paradyn::stats
