// One-sample Kolmogorov-Smirnov test.
//
// Reusable across the codebase: the variate-backend equivalence tests
// (ziggurat vs reference draws against the analytic CDF) and the Figure 8
// fitting checks both need "is this sample consistent with this CDF?" with
// an actual p-value, not just the raw D statistic that fitting.hpp exposes.
//
// The p-value uses the asymptotic Kolmogorov distribution with Stephens'
// finite-n correction: lambda = (sqrt(n) + 0.12 + 0.11/sqrt(n)) * D, then
// Q(lambda) = 2 * sum_{k>=1} (-1)^{k-1} exp(-2 k^2 lambda^2).  Accurate to
// a few percent for n >= 10 — ample for accept/reject at the 1% level.
#pragma once

#include <functional>
#include <span>

#include "stats/distributions.hpp"

namespace paradyn::stats {

/// A model CDF evaluated at one point.
using CdfFn = std::function<double(double)>;

struct KsTestResult {
  double statistic = 0.0;  ///< D = sup |F_empirical - F_model|.
  double p_value = 0.0;    ///< P(D >= statistic | H0: data ~ model).
  std::size_t n = 0;

  /// Convenience for assertions: reject H0 at significance `alpha`?
  [[nodiscard]] bool reject(double alpha = 0.05) const noexcept { return p_value < alpha; }
};

/// Survival function of the Kolmogorov distribution, Q(lambda) =
/// P(K >= lambda).  Q(0) = 1; decreases to 0.
[[nodiscard]] double kolmogorov_q(double lambda);

/// P-value for an observed one-sample D at sample size n (Stephens'
/// correction applied).
[[nodiscard]] double kolmogorov_p_value(double statistic, std::size_t n);

/// One-sample KS test of `data` against an arbitrary model CDF.  Data need
/// not be sorted (a sorted copy is made).
[[nodiscard]] KsTestResult ks_test(std::span<const double> data, const CdfFn& cdf);

/// One-sample KS test of `data` against a Distribution's CDF.
[[nodiscard]] KsTestResult ks_test(std::span<const double> data, const Distribution& dist);

}  // namespace paradyn::stats
