// Distribution fitting (Section 2.3.2 of the paper).
//
// Maximum-likelihood estimators for the three candidate families the paper
// considers (exponential, lognormal, Weibull), Kolmogorov-Smirnov
// goodness-of-fit, and a model-selection helper that picks the family with
// the highest log-likelihood — the procedure behind Table 2 and Figure 8.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "stats/distributions.hpp"

namespace paradyn::stats {

/// MLE fit of Exponential: mean = sample mean.  Requires positive data.
[[nodiscard]] Exponential fit_exponential(std::span<const double> data);

/// MLE fit of Lognormal: mu/sigma = mean/stddev of log(data).
[[nodiscard]] Lognormal fit_lognormal(std::span<const double> data);

/// MLE fit of Weibull: shape solved by Newton iteration on the profile
/// likelihood, scale in closed form given the shape.
[[nodiscard]] Weibull fit_weibull(std::span<const double> data);

/// Kolmogorov-Smirnov statistic: sup |F_empirical - F_model|.
[[nodiscard]] double ks_statistic(std::span<const double> data, const Distribution& dist);

/// Chi-square goodness-of-fit against equal-probability bins.
struct ChiSquareResult {
  double statistic = 0.0;
  std::size_t bins = 0;
  double degrees_of_freedom = 0.0;  ///< bins - 1 - params_estimated.
  double p_value = 0.0;             ///< P(X^2 >= statistic) under H0.
};

/// Partition the model's support into `bins` equal-probability cells and
/// compare observed vs expected counts.  `params_estimated` reduces the
/// degrees of freedom when the model was fitted to the same data (2 for
/// lognormal/Weibull, 1 for exponential).
[[nodiscard]] ChiSquareResult chi_square_test(std::span<const double> data,
                                              const Distribution& dist, std::size_t bins = 20,
                                              std::size_t params_estimated = 0);

/// Result of fitting one candidate family.
struct FitResult {
  DistributionPtr distribution;
  double log_likelihood = 0.0;
  double ks = 0.0;
};

/// Fit all three candidate families and return them sorted by descending
/// log-likelihood (best first).  This mirrors the paper's visual comparison
/// of the exponential / Weibull / lognormal pdfs in Figure 8.
[[nodiscard]] std::vector<FitResult> fit_candidates(std::span<const double> data);

/// Convenience: the single best-fitting family by log-likelihood.
[[nodiscard]] FitResult fit_best(std::span<const double> data);

}  // namespace paradyn::stats
