// Streaming summary statistics, histograms, empirical quantiles, and Q-Q
// plot data — the machinery behind the paper's Table 1 and Figure 8.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "stats/distributions.hpp"

namespace paradyn::stats {

/// Welford-style streaming accumulator: count, mean, variance, min, max.
/// Numerically stable; O(1) memory.
class SummaryStats {
 public:
  void add(double x) noexcept;
  void merge(const SummaryStats& other) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two points.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return n_ ? max_ : 0.0; }
  [[nodiscard]] double sum() const noexcept { return n_ ? mean_ * static_cast<double>(n_) : 0.0; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Compute summary stats of a data span in one pass.
[[nodiscard]] SummaryStats summarize(std::span<const double> data);

/// Fixed-width-bin histogram over [lo, hi); values outside are clamped into
/// the first/last bin so mass is conserved.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x) noexcept;
  void add_all(std::span<const double> data) noexcept;

  [[nodiscard]] std::size_t bin_count() const noexcept { return counts_.size(); }
  [[nodiscard]] std::size_t count(std::size_t bin) const { return counts_.at(bin); }
  [[nodiscard]] std::size_t total() const noexcept { return total_; }
  /// Midpoint of bin `i`.
  [[nodiscard]] double bin_center(std::size_t bin) const;
  [[nodiscard]] double bin_width() const noexcept { return width_; }
  /// Relative frequency density of bin `i` (integrates to ~1), comparable to
  /// a pdf — this is the y-axis of Figure 8.
  [[nodiscard]] double density(std::size_t bin) const;

 private:
  double lo_;
  double width_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

/// Empirical quantile of *sorted* data at probability p (linear
/// interpolation, type-7 as in R).
[[nodiscard]] double empirical_quantile(std::span<const double> sorted, double p);

/// One point of a quantile-quantile plot.
struct QQPoint {
  double theoretical = 0.0;
  double observed = 0.0;
};

/// Q-Q plot data for `data` against `dist` at `points` evenly spaced
/// probabilities ((i+0.5)/points).  Data need not be sorted.
[[nodiscard]] std::vector<QQPoint> qq_plot(std::span<const double> data, const Distribution& dist,
                                           std::size_t points = 50);

/// Mean absolute relative deviation of a Q-Q plot from the ideal y=x line —
/// a scalar "straightness" score used in tests of the fitting pipeline.
[[nodiscard]] double qq_deviation(std::span<const QQPoint> points);

}  // namespace paradyn::stats
