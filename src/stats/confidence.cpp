#include "stats/confidence.hpp"

#include <cmath>
#include <stdexcept>

#include "stats/special_functions.hpp"

namespace paradyn::stats {

double ConfidenceInterval::relative_half_width() const noexcept {
  if (mean == 0.0) return 0.0;
  return half_width / std::fabs(mean);
}

ConfidenceInterval mean_confidence_interval(const SummaryStats& stats, double level) {
  if (stats.count() < 2) {
    throw std::invalid_argument("mean_confidence_interval: need at least 2 observations");
  }
  if (!(level > 0.0 && level < 1.0)) {
    throw std::invalid_argument("mean_confidence_interval: level in (0,1)");
  }
  const auto n = static_cast<double>(stats.count());
  const double df = n - 1.0;
  const double t = student_t_quantile(0.5 + 0.5 * level, df);
  ConfidenceInterval ci;
  ci.mean = stats.mean();
  ci.half_width = t * stats.stddev() / std::sqrt(n);
  ci.level = level;
  return ci;
}

ConfidenceInterval mean_confidence_interval(std::span<const double> data, double level) {
  return mean_confidence_interval(summarize(data), level);
}

}  // namespace paradyn::stats
