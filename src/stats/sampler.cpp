#include "stats/sampler.hpp"

#include <stdexcept>

#include "stats/empirical.hpp"

namespace paradyn::stats {

const char* to_string(SamplerBackend backend) noexcept {
  switch (backend) {
    case SamplerBackend::Ziggurat:
      return "ziggurat";
    case SamplerBackend::Reference:
      return "reference";
  }
  return "?";
}

FrozenSampler FrozenSampler::compile(const DistributionPtr& dist, SamplerBackend backend) {
  if (!dist) throw std::invalid_argument("FrozenSampler::compile: null distribution");
  const bool zig = backend == SamplerBackend::Ziggurat;
  FrozenSampler s;

  if (const auto* d = dynamic_cast<const Deterministic*>(dist.get())) {
    s.kind_ = Kind::kDeterministic;
    s.a_ = d->mean();
    return s;
  }
  if (const auto* u = dynamic_cast<const Uniform*>(dist.get())) {
    s.kind_ = Kind::kUniform;
    s.a_ = u->quantile(0.0);
    s.b_ = u->quantile(1.0) - u->quantile(0.0);
    return s;
  }
  if (const auto* e = dynamic_cast<const Exponential*>(dist.get())) {
    s.kind_ = zig ? Kind::kExponentialZig : Kind::kExponentialRef;
    s.a_ = e->mean();
    return s;
  }
  if (const auto* l = dynamic_cast<const Lognormal*>(dist.get())) {
    s.kind_ = zig ? Kind::kLognormalZig : Kind::kLognormalRef;
    s.a_ = l->mu();
    s.b_ = l->sigma();
    return s;
  }
  if (const auto* w = dynamic_cast<const Weibull*>(dist.get())) {
    s.kind_ = zig ? Kind::kWeibullZig : Kind::kWeibullRef;
    s.a_ = w->scale();
    s.b_ = 1.0 / w->shape();
    return s;
  }
  if (const auto* e = dynamic_cast<const Empirical*>(dist.get())) {
    const auto values = e->values();
    const std::vector<double> sorted(values.begin(), values.end());
    if (zig) {
      // Walker alias table: same mixture-of-segments distribution as the
      // quantile path, O(1) per draw, but a different stream (KS-gated in
      // the stat_equiv suite).
      s.kind_ = Kind::kEmpiricalAlias;
      s.alias_ = std::make_shared<const AliasTable>(AliasTable::from_sorted_values(sorted));
    } else {
      // Historical inverse-CDF arithmetic, bit-identical to the virtual
      // sample() — the --reference-rng replay path.
      s.kind_ = Kind::kEmpiricalQuantile;
      s.table_ = std::make_shared<const std::vector<double>>(sorted);
    }
    return s;
  }

  throw std::invalid_argument("FrozenSampler::compile: unknown distribution family: " +
                              dist->describe());
}

void FrozenSampler::fill(des::Pcg32& rng, std::span<double> out) const {
  double* p = out.data();
  const std::size_t n = out.size();
  switch (kind_) {
    case Kind::kDeterministic:
      for (std::size_t i = 0; i < n; ++i) p[i] = a_;
      return;
    case Kind::kExponentialZig:
      // a_ * fill(e): scaling is elementwise, draw order unchanged.
      ziggurat_exponential_fill(rng, p, n);
      for (std::size_t i = 0; i < n; ++i) p[i] *= a_;
      return;
    case Kind::kLognormalZig:
      // exp(mu + sigma * z) over a batch of normals — the transform loop
      // is the scalar arithmetic applied per element, so the stream and
      // values match n scalar draws exactly.
      ziggurat_normal_fill(rng, p, n);
      for (std::size_t i = 0; i < n; ++i) p[i] = std::exp(a_ + b_ * p[i]);
      return;
    case Kind::kWeibullZig:
      ziggurat_exponential_fill(rng, p, n);
      for (std::size_t i = 0; i < n; ++i) p[i] = a_ * std::pow(p[i], b_);
      return;
    case Kind::kEmpiricalAlias:
      alias_->fill(rng, p, n);
      return;
    case Kind::kUniform:
    case Kind::kExponentialRef:
    case Kind::kLognormalRef:
    case Kind::kWeibullRef:
    case Kind::kEmpiricalQuantile:
      // One-u64 families with no batch kernel (and the Reference replay
      // paths, which must not change shape): the plain scalar loop is the
      // definition of the contract.
      for (std::size_t i = 0; i < n; ++i) p[i] = (*this)(rng);
      return;
  }
}

}  // namespace paradyn::stats
