#include "stats/sampler.hpp"

#include <stdexcept>

#include "stats/empirical.hpp"

namespace paradyn::stats {

const char* to_string(SamplerBackend backend) noexcept {
  switch (backend) {
    case SamplerBackend::Ziggurat:
      return "ziggurat";
    case SamplerBackend::Reference:
      return "reference";
  }
  return "?";
}

FrozenSampler FrozenSampler::compile(const DistributionPtr& dist, SamplerBackend backend) {
  if (!dist) throw std::invalid_argument("FrozenSampler::compile: null distribution");
  const bool zig = backend == SamplerBackend::Ziggurat;
  FrozenSampler s;

  if (const auto* d = dynamic_cast<const Deterministic*>(dist.get())) {
    s.kind_ = Kind::kDeterministic;
    s.a_ = d->mean();
    return s;
  }
  if (const auto* u = dynamic_cast<const Uniform*>(dist.get())) {
    s.kind_ = Kind::kUniform;
    s.a_ = u->quantile(0.0);
    s.b_ = u->quantile(1.0) - u->quantile(0.0);
    return s;
  }
  if (const auto* e = dynamic_cast<const Exponential*>(dist.get())) {
    s.kind_ = zig ? Kind::kExponentialZig : Kind::kExponentialRef;
    s.a_ = e->mean();
    return s;
  }
  if (const auto* l = dynamic_cast<const Lognormal*>(dist.get())) {
    s.kind_ = zig ? Kind::kLognormalZig : Kind::kLognormalRef;
    s.a_ = l->mu();
    s.b_ = l->sigma();
    return s;
  }
  if (const auto* w = dynamic_cast<const Weibull*>(dist.get())) {
    s.kind_ = zig ? Kind::kWeibullZig : Kind::kWeibullRef;
    s.a_ = w->scale();
    s.b_ = 1.0 / w->shape();
    return s;
  }
  if (const auto* e = dynamic_cast<const Empirical*>(dist.get())) {
    // Backend-independent (pure inverse CDF), like the virtual sample().
    s.kind_ = Kind::kEmpirical;
    const auto values = e->values();
    s.table_ = std::make_shared<const std::vector<double>>(values.begin(), values.end());
    return s;
  }

  throw std::invalid_argument("FrozenSampler::compile: unknown distribution family: " +
                              dist->describe());
}

}  // namespace paradyn::stats
