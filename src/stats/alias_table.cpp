#include "stats/alias_table.hpp"

#include <stdexcept>

namespace paradyn::stats {

AliasTable AliasTable::from_sorted_values(const std::vector<double>& values) {
  AliasTable t;
  if (values.empty()) throw std::invalid_argument("AliasTable: empty sample");
  if (values.size() == 1) {
    t.lo_.push_back(values[0]);
    t.columns_ = 1;
    // width_ stays empty: degenerate, no RNG consumption.
    return t;
  }

  // Merge consecutive identical (lo, hi) segment pairs: ties in the order
  // statistics produce runs of equal segments (and zero-width atoms);
  // grouping them keeps the table small and the column pick well mixed.
  struct Seg {
    double lo;
    double width;
    std::size_t count;
  };
  std::vector<Seg> segs;
  for (std::size_t i = 0; i + 1 < values.size(); ++i) {
    const double lo = values[i];
    const double width = values[i + 1] - values[i];
    if (!segs.empty() && segs.back().lo == lo && segs.back().width == width) {
      ++segs.back().count;
    } else {
      segs.push_back(Seg{lo, width, 1});
    }
  }

  const std::size_t m = segs.size();
  t.columns_ = m;
  t.lo_.reserve(m);
  t.width_.reserve(m);
  for (const Seg& s : segs) {
    t.lo_.push_back(s.lo);
    t.width_.push_back(s.width);
  }
  if (m == 1) return t;  // single column: the draw path skips the alias test

  // Vose's stable construction.  scaled[c] = weight_c * m, where
  // weight_c = count_c / (n - 1); columns with scaled < 1 donate their
  // deficit to an overweight column's alias slot.
  const double total = static_cast<double>(values.size() - 1);
  std::vector<double> scaled(m);
  for (std::size_t c = 0; c < m; ++c) {
    scaled[c] = static_cast<double>(segs[c].count) * static_cast<double>(m) / total;
  }
  t.prob_.assign(m, 1.0);
  t.alias_.resize(m);
  for (std::size_t c = 0; c < m; ++c) t.alias_[c] = static_cast<std::uint32_t>(c);

  std::vector<std::uint32_t> small;
  std::vector<std::uint32_t> large;
  for (std::size_t c = 0; c < m; ++c) {
    (scaled[c] < 1.0 ? small : large).push_back(static_cast<std::uint32_t>(c));
  }
  while (!small.empty() && !large.empty()) {
    const std::uint32_t s = small.back();
    small.pop_back();
    const std::uint32_t l = large.back();
    t.prob_[s] = scaled[s];
    t.alias_[s] = l;
    scaled[l] -= 1.0 - scaled[s];
    if (scaled[l] < 1.0) {
      large.pop_back();
      small.push_back(l);
    }
  }
  // Leftovers (either list) are numerically 1.0.
  for (const std::uint32_t c : small) t.prob_[c] = 1.0;
  for (const std::uint32_t c : large) t.prob_[c] = 1.0;

  t.inv_p_.resize(m);
  t.inv_q_.resize(m);
  for (std::size_t c = 0; c < m; ++c) {
    t.inv_p_[c] = t.prob_[c] > 0.0 ? 1.0 / t.prob_[c] : 0.0;
    // prob == 1 never takes the alias branch (x < 1 always); 0 is a safe
    // placeholder that avoids an inf in the table.
    t.inv_q_[c] = t.prob_[c] < 1.0 ? 1.0 / (1.0 - t.prob_[c]) : 0.0;
  }
  return t;
}

}  // namespace paradyn::stats
