// Devirtualized variate sampling for the simulation hot loop.
//
// Every occupancy request in the ROCC model draws from a fitted
// distribution.  Going through the virtual Distribution::sample() costs an
// indirect call per variate and (for the lognormal) a full Box-Muller; on
// paper-scale runs variate generation is the hottest non-queue path.
//
// FrozenSampler is the fast path: a small tagged-union value type compiled
// once from any Distribution.  Sampling is an inline switch over the family
// — no virtual call, no heap, no shared_ptr dereference — with normals and
// exponentials drawn through the ziggurat (see ziggurat.hpp).
//
// Two backends:
//   Ziggurat   the production path: ziggurat normal/exponential, ~3-6x
//              faster, statistically identical but a *different* draw
//              sequence than the pre-PR-5 streams.
//   Reference  bit-reproduces the historical Distribution::sample()
//              streams (Box-Muller normal, inverse-CDF exponential /
//              Weibull) for replaying old experiments (--reference-rng).
#pragma once

#include <cmath>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "des/random.hpp"
#include "stats/alias_table.hpp"
#include "stats/distributions.hpp"
#include "stats/ziggurat.hpp"

namespace paradyn::stats {

/// Which variate engine a FrozenSampler compiles to.
enum class SamplerBackend : std::uint8_t {
  Ziggurat,   ///< Fast path (default since PR 5).
  Reference,  ///< Pre-PR-5 draw sequences (Box-Muller / inverse-CDF).
};

[[nodiscard]] const char* to_string(SamplerBackend backend) noexcept;

/// A Distribution frozen into an inline-dispatch sampler.  Every family
/// compiles to an inline switch — Empirical becomes a Walker alias table
/// under the Ziggurat backend (O(1) per draw) and keeps the historical
/// inline inverse-CDF under Reference; compile() rejects
/// unknown Distribution subclasses rather than fall back to the virtual
/// sample() (the retired kVirtual path).
class FrozenSampler {
 public:
  /// Default: deterministic 0 (a placeholder that draws nothing).
  FrozenSampler() noexcept = default;

  /// Freeze `dist` for `backend`.  Throws std::invalid_argument for a
  /// Distribution subclass outside the known families.
  [[nodiscard]] static FrozenSampler compile(const DistributionPtr& dist,
                                             SamplerBackend backend = SamplerBackend::Ziggurat);

  /// Draw one variate.
  double operator()(des::Pcg32& rng) const {
    switch (kind_) {
      case Kind::kDeterministic:
        return a_;
      case Kind::kUniform:  // a_ = lo, b_ = hi - lo
        return a_ + rng.next_double() * b_;
      case Kind::kExponentialZig:  // a_ = mean
        return a_ * ziggurat_exponential(rng);
      case Kind::kExponentialRef:
        return -a_ * std::log(rng.next_open_double());
      case Kind::kLognormalZig:  // a_ = mu, b_ = sigma
        return std::exp(a_ + b_ * ziggurat_normal(rng));
      case Kind::kLognormalRef:
        return std::exp(a_ + b_ * box_muller_normal(rng));
      case Kind::kWeibullZig:  // a_ = scale, b_ = 1 / shape
        return a_ * std::pow(ziggurat_exponential(rng), b_);
      case Kind::kWeibullRef:
        return a_ * std::pow(-std::log(rng.next_open_double()), b_);
      case Kind::kEmpiricalAlias:
        return (*alias_)(rng);
      case Kind::kEmpiricalQuantile:
        return empirical_draw(rng);
    }
    return a_;  // unreachable
  }

  /// Bulk draw: out is filled with exactly the stream out.size() calls of
  /// operator() would produce — bit for bit, same final RNG state — but
  /// normals/exponentials go through the batch ziggurat kernels
  /// (ziggurat_*_fill) and the lognormal/Weibull transforms run as a
  /// separate elementwise pass over the block.
  void fill(des::Pcg32& rng, std::span<double> out) const;

  /// True when the sampler dispatches inline.  Always the case since the
  /// virtual fallback was retired; kept for tests and introspection.
  [[nodiscard]] bool devirtualized() const noexcept { return true; }

  /// False for Deterministic: draws consume no randomness, so prefill
  /// buffering would only add a copy.
  [[nodiscard]] bool stochastic() const noexcept { return kind_ != Kind::kDeterministic; }

 private:
  enum class Kind : std::uint8_t {
    kDeterministic,
    kUniform,
    kExponentialZig,
    kExponentialRef,
    kLognormalZig,
    kLognormalRef,
    kWeibullZig,
    kWeibullRef,
    kEmpiricalAlias,     ///< Walker alias table (Ziggurat backend).
    kEmpiricalQuantile,  ///< Historical inline inverse-CDF (--reference-rng).
  };

  /// Inverse-CDF over the shared order-statistics table — the exact
  /// arithmetic of Empirical::quantile(rng.next_double()), so Reference
  /// streams stay bit-identical to the historical virtual path.
  [[nodiscard]] double empirical_draw(des::Pcg32& rng) const {
    const std::vector<double>& v = *table_;
    const double h = rng.next_double() * static_cast<double>(v.size() - 1);
    const auto i = static_cast<std::size_t>(std::floor(h));
    if (i + 1 >= v.size()) return v.back();
    const double frac = h - std::floor(h);
    return v[i] + frac * (v[i + 1] - v[i]);
  }

  /// Box-Muller, inlined with the exact draw order of
  /// sample_standard_normal so Reference streams match history.
  [[nodiscard]] static double box_muller_normal(des::Pcg32& rng) {
    constexpr double kTwoPi = 6.28318530717958647692;
    const double u1 = rng.next_open_double();
    const double u2 = rng.next_double();
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(kTwoPi * u2);
  }

  Kind kind_ = Kind::kDeterministic;
  double a_ = 0.0;
  double b_ = 0.0;
  /// Shared sorted order statistics; only set for kEmpiricalQuantile.
  std::shared_ptr<const std::vector<double>> table_;
  /// Shared alias table; only set for kEmpiricalAlias.
  std::shared_ptr<const AliasTable> alias_;
};

}  // namespace paradyn::stats
