#include "stats/matrix.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace paradyn::stats {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n, 0.0);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

double& Matrix::at(std::size_t r, std::size_t c) {
  if (r >= rows_ || c >= cols_) throw std::out_of_range("Matrix::at");
  return data_[r * cols_ + c];
}

const double& Matrix::at(std::size_t r, std::size_t c) const {
  if (r >= rows_ || c >= cols_) throw std::out_of_range("Matrix::at");
  return data_[r * cols_ + c];
}

Matrix Matrix::transpose() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  }
  return t;
}

Matrix Matrix::multiply(const Matrix& rhs) const {
  if (cols_ != rhs.rows_) throw std::invalid_argument("Matrix::multiply: shape mismatch");
  Matrix out(rows_, rhs.cols_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double v = (*this)(r, k);
      if (v == 0.0) continue;
      for (std::size_t c = 0; c < rhs.cols_; ++c) out(r, c) += v * rhs(k, c);
    }
  }
  return out;
}

bool Matrix::is_symmetric(double tol) const noexcept {
  if (rows_ != cols_) return false;
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = r + 1; c < cols_; ++c) {
      if (std::fabs((*this)(r, c) - (*this)(c, r)) > tol) return false;
    }
  }
  return true;
}

EigenResult jacobi_eigen(const Matrix& m, double tol, int max_sweeps) {
  if (m.rows() != m.cols()) throw std::invalid_argument("jacobi_eigen: matrix not square");
  if (!m.is_symmetric(1e-8)) throw std::invalid_argument("jacobi_eigen: matrix not symmetric");
  const std::size_t n = m.rows();

  Matrix a = m;
  Matrix v = Matrix::identity(n);

  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    double off = 0.0;
    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) off += a(p, q) * a(p, q);
    }
    if (off < tol * tol) break;

    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        if (std::fabs(a(p, q)) < 1e-300) continue;
        const double theta = (a(q, q) - a(p, p)) / (2.0 * a(p, q));
        const double t = (theta >= 0.0 ? 1.0 : -1.0) /
                         (std::fabs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;

        for (std::size_t k = 0; k < n; ++k) {
          const double akp = a(k, p);
          const double akq = a(k, q);
          a(k, p) = c * akp - s * akq;
          a(k, q) = s * akp + c * akq;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double apk = a(p, k);
          const double aqk = a(q, k);
          a(p, k) = c * apk - s * aqk;
          a(q, k) = s * apk + c * aqk;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double vkp = v(k, p);
          const double vkq = v(k, q);
          v(k, p) = c * vkp - s * vkq;
          v(k, q) = s * vkp + c * vkq;
        }
      }
    }
  }

  // Sort eigenpairs by descending eigenvalue.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](std::size_t i, std::size_t j) { return a(i, i) > a(j, j); });

  EigenResult result;
  result.values.resize(n);
  result.vectors = Matrix(n, n);
  for (std::size_t idx = 0; idx < n; ++idx) {
    result.values[idx] = a(order[idx], order[idx]);
    for (std::size_t k = 0; k < n; ++k) result.vectors(k, idx) = v(k, order[idx]);
  }
  return result;
}

}  // namespace paradyn::stats
