// Small dense matrix with a Jacobi symmetric eigensolver.
//
// Used by the principal-component analysis in pca.hpp.  The matrices here
// are tiny (k x k for a handful of experimental factors), so a simple
// row-major dense representation and the classical Jacobi rotation method
// are the right tools: exact enough, dependency-free, easy to verify.
#pragma once

#include <cstddef>
#include <vector>

namespace paradyn::stats {

/// Row-major dense matrix of doubles.
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);

  [[nodiscard]] static Matrix identity(std::size_t n);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }

  [[nodiscard]] double& at(std::size_t r, std::size_t c);
  [[nodiscard]] const double& at(std::size_t r, std::size_t c) const;
  double& operator()(std::size_t r, std::size_t c) noexcept { return data_[r * cols_ + c]; }
  const double& operator()(std::size_t r, std::size_t c) const noexcept {
    return data_[r * cols_ + c];
  }

  [[nodiscard]] Matrix transpose() const;
  [[nodiscard]] Matrix multiply(const Matrix& rhs) const;
  [[nodiscard]] bool is_symmetric(double tol = 1e-9) const noexcept;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// Eigen decomposition of a symmetric matrix.
struct EigenResult {
  std::vector<double> values;  ///< Descending order.
  Matrix vectors;              ///< Column i is the eigenvector for values[i].
};

/// Classical Jacobi rotation eigensolver for symmetric matrices.
/// Throws std::invalid_argument if `m` is not square/symmetric.
[[nodiscard]] EigenResult jacobi_eigen(const Matrix& m, double tol = 1e-12,
                                       int max_sweeps = 100);

}  // namespace paradyn::stats
