// Confidence intervals for replicated simulation output.
//
// The paper derives mean metric values "within 90% confidence intervals from
// a sample of fifty values" (Section 4.1).  This module provides the
// Student-t interval used by the replication harness.
#pragma once

#include <span>

#include "stats/summary.hpp"

namespace paradyn::stats {

/// A two-sided confidence interval for a mean.
struct ConfidenceInterval {
  double mean = 0.0;
  double half_width = 0.0;
  double level = 0.0;  // e.g. 0.90

  [[nodiscard]] double lower() const noexcept { return mean - half_width; }
  [[nodiscard]] double upper() const noexcept { return mean + half_width; }
  [[nodiscard]] bool contains(double x) const noexcept {
    return x >= lower() && x <= upper();
  }
  /// Half-width as a fraction of |mean| (0 when mean is ~0).
  [[nodiscard]] double relative_half_width() const noexcept;
};

/// Student-t confidence interval for the mean of `data` at `level`
/// (default 0.90, matching the paper).  Requires at least two points.
[[nodiscard]] ConfidenceInterval mean_confidence_interval(std::span<const double> data,
                                                          double level = 0.90);

/// Same, from already-accumulated summary statistics.
[[nodiscard]] ConfidenceInterval mean_confidence_interval(const SummaryStats& stats,
                                                          double level = 0.90);

}  // namespace paradyn::stats
